//! `fleet_sweep`: the parallel scenario-grid harness.
//!
//! Every grid this binary runs is a [`quanto_fleet::GridSpec`]: the
//! built-in default, `--smoke` and `--stress` grids are checked-in config
//! files under `crates/bench/grids/` (compiled in, and runnable verbatim
//! through `--grid`), and `--grid FILE` runs any user-composed grid.
//! Scenarios execute on the fleet's zero-materialization path: each node's
//! log streams through a `LogSink` → incremental-builder chain *during* the
//! run, so no scenario's log is ever materialized and the peak raw-entry
//! retention of a whole sweep is zero.  Progress streams over a channel as
//! scenarios merge, and the merged summary table (or, with `--json`, a
//! machine-readable JSON document) prints at the end.
//!
//! ```text
//! fleet_sweep [--seconds N] [--threads N] [--seeds N] [--json]
//!             [--grid FILE] [--smoke] [--min-speedup X]
//!             [--stress [PAIRS]] [--stress-nodes N]
//!             [--shards N] [--cache DIR] [--no-cache]
//!             [--server ADDR]
//!             [--obs] [--obs-json FILE]
//! ```
//!
//! Unknown flags are a usage error — a typo'd axis override must fail
//! loudly, not silently run the wrong sweep.
//!
//! `--shards N` (N ≥ 2) runs the grid as a fleet of fleets: N shard
//! processes of this same binary claim adaptively-sized scenario chunks
//! from a coordinator work queue over loopback TCP (see
//! `quanto_fleet::dist`), each executing its chunk on its own
//! `FleetRunner` with `--threads` workers.  The merged report — and its
//! digest — is byte-identical to `--shards 1` at any thread count.  The
//! internal `--shard ADDR` spelling is what the spawned children run; it
//! must be the only argument.
//!
//! Grid sweeps consult a content-addressed result cache by default
//! (`.quanto-cache/` next to the working directory; `--cache DIR` moves
//! it, `--no-cache` disables it): every scenario whose canonical spec
//! digest has a valid entry is answered from disk instead of simulated,
//! and freshly-simulated cells are written back atomically.  A warm
//! re-run of an unchanged grid executes zero simulations and folds the
//! byte-identical digest.  `--smoke` and `--stress-nodes` are gates, not
//! sweeps — the shard and cache flags are rejected there.
//!
//! `--server ADDR` runs the grid on a `quanto_serve` daemon instead of in
//! this process: the grid text ships over the JSON-lines client protocol
//! (`docs/PROTOCOL.md`), progress events stream back live, and the final
//! summary — digest included — is byte-identical to the daemon's
//! accumulator output (`--json` prints the streamed documents verbatim).
//! Execution policy belongs to the daemon, so the local execution flags
//! (`--threads`, `--shards`, `--cache`/`--no-cache`) and the gate modes
//! are rejected with it.
//!
//! `--obs` turns the `quanto-obs` tracing/metrics layer on for the run
//! (off by default — spans and counters record nothing otherwise) and
//! prints the profile table at the end: time by phase × scenario kind,
//! per-worker utilization, the hottest scenarios and the merged engine,
//! medium and stream counters.  `--obs-json FILE` additionally writes the
//! structured profile, including a chrome://tracing-compatible
//! `trace_events` array.  Both compose with every mode; with `--json` the
//! table goes to stderr so stdout stays machine-readable.  Observability
//! is non-perturbing: the simulation takes the identical path either way,
//! and every report digest is byte-identical with it on or off (enforced
//! by the fleet `obs_equivalence` test).
//!
//! `--stress` runs the multi-node path-loss stress grid: PAIRS (default 8)
//! side-by-side Bounce exchanges spaced along a line under the log-distance
//! model, where neighboring pairs are hidden terminals and the capture rule
//! decides collisions.
//!
//! `--stress-nodes N` runs one single scenario with N nodes (N/2 Bounce
//! pairs; 10k-node cells are routine now that the v2 log encoding carries
//! 32-bit node ids and the spatial medium index keeps delivery
//! O(neighbors)) through the heap scheduler and the zero-materialization
//! path, and fails unless the run holds zero raw entries — the
//! bounded-memory proof for large single-scenario cells.
//!
//! `--smoke` is the CI job: it runs the smoke grid — which includes one
//! scenario per medium kind (ideal, unit_disk, path_loss, mobility), so a
//! nondeterministic loss RNG in any medium fails the gate — twice on 1
//! thread and twice on 4, verifies all four reports are byte-identical (the
//! determinism contract of the fleet subsystem), prints the best wall-clock
//! per thread count as bench-compatible summary lines for `bench_check`, on
//! hosts with more than one CPU fails unless the 4-thread run shows at
//! least the required speedup (default 1.5×, `--min-speedup X` to
//! override), on single-CPU hosts fails instead if the 4-thread wall
//! exceeds 1.15× the 1-thread wall (the merge-loop health gate: workers
//! must not park on the reorder-window backpressure gate when in window —
//! `--obs` attributes any stall via the `runner.backpressure_stalls` and
//! `runner.merge_wakeups` counters), and finally runs the retention
//! gates: a 64-scenario batch
//! must hold *zero* raw entries on the default streaming path, and must
//! stay under a quarter of its entries on the materializing batch-digest
//! path (the reorder-window bound).
//!
//! Note on the baseline: the `fleet/sweep_smoke_t4` wall-clock depends on
//! the recording host's core count, which the single-core `calibration/spin`
//! normalization cannot correct for — on hosts with more parallelism than
//! the recorder it can only under-trigger, and the real parallelism gate is
//! the speedup check here, not the baseline entry.

use quanto_bench::baseline::bench_line;
use quanto_fleet::{
    dist, scenarios, DistOptions, FleetProgress, FleetRunner, GridOverrides, GridSpec, ResultCache,
    Scenario,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// The checked-in built-in grids (also runnable via `--grid <path>`).
const DEFAULT_GRID: &str = include_str!("../../grids/default.grid");
const SMOKE_GRID: &str = include_str!("../../grids/smoke.grid");
const STRESS_GRID: &str = include_str!("../../grids/stress.grid");

const USAGE: &str = "usage: fleet_sweep [--seconds N] [--threads N] [--seeds N] [--json]\n\
                     \x20                 [--grid FILE] [--smoke] [--min-speedup X]\n\
                     \x20                 [--stress [PAIRS]] [--stress-nodes N]\n\
                     \x20                 [--shards N] [--cache DIR] [--no-cache]\n\
                     \x20                 [--server ADDR] [--obs] [--obs-json FILE]";

/// Where grid sweeps cache results unless `--cache DIR` / `--no-cache`
/// says otherwise.
const DEFAULT_CACHE_DIR: &str = ".quanto-cache";

/// Parsed command line.  Every flag is validated; leftovers are errors.
#[derive(Debug)]
struct Args {
    seconds: Option<f64>,
    threads: usize,
    seeds: Option<u64>,
    min_speedup: f64,
    json: bool,
    smoke: bool,
    grid: Option<String>,
    stress: bool,
    stress_pairs: Option<u16>,
    stress_nodes: Option<u32>,
    shards: Option<u32>,
    cache: Option<String>,
    no_cache: bool,
    /// Internal: run as a shard worker against this coordinator address.
    shard_addr: Option<String>,
    /// Client mode: run the grid on the `quanto_serve` daemon at this
    /// address instead of in-process.
    server: Option<String>,
    /// Whether `--threads` was given explicitly (server mode rejects it —
    /// the pool size is daemon policy).
    threads_set: bool,
    obs: bool,
    obs_json: Option<String>,
}

impl Args {
    /// The cache directory a grid sweep should use: `--no-cache` disables,
    /// `--cache DIR` relocates, otherwise the default next to the working
    /// directory.
    fn cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        Some(PathBuf::from(
            self.cache.as_deref().unwrap_or(DEFAULT_CACHE_DIR),
        ))
    }
}

fn usage_error(message: String) -> Result<Args, String> {
    Err(format!("{message}\n{USAGE}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seconds: None,
        threads: FleetRunner::host_parallel().threads(),
        seeds: None,
        min_speedup: 1.5,
        json: false,
        smoke: false,
        grid: None,
        stress: false,
        stress_pairs: None,
        stress_nodes: None,
        shards: None,
        cache: None,
        no_cache: false,
        shard_addr: None,
        server: None,
        threads_set: false,
        obs: false,
        obs_json: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .ok_or_else(|| format!("fleet_sweep: {flag} needs a value\n{USAGE}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seconds" => {
                let v = value(&mut i, "--seconds")?;
                match v.parse::<f64>() {
                    Ok(s) if s > 0.0 => args.seconds = Some(s),
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --seconds expects a positive number, got {v:?}"
                        ))
                    }
                }
            }
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                match v.parse::<usize>() {
                    Ok(t) if t > 0 => {
                        args.threads = t;
                        args.threads_set = true;
                    }
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --threads expects a positive integer, got {v:?}"
                        ))
                    }
                }
            }
            "--seeds" => {
                let v = value(&mut i, "--seeds")?;
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => args.seeds = Some(n),
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --seeds expects a positive integer, got {v:?}"
                        ))
                    }
                }
            }
            "--min-speedup" => {
                let v = value(&mut i, "--min-speedup")?;
                match v.parse::<f64>() {
                    Ok(x) if x > 0.0 => args.min_speedup = x,
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --min-speedup expects a positive number, got {v:?}"
                        ))
                    }
                }
            }
            "--grid" => args.grid = Some(value(&mut i, "--grid")?),
            "--shards" => {
                let v = value(&mut i, "--shards")?;
                match v.parse::<u32>() {
                    Ok(n) if (1..=256).contains(&n) => args.shards = Some(n),
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --shards expects a shard count in 1..=256, got {v:?}"
                        ))
                    }
                }
            }
            "--cache" => args.cache = Some(value(&mut i, "--cache")?),
            "--no-cache" => args.no_cache = true,
            "--shard" => args.shard_addr = Some(value(&mut i, "--shard")?),
            "--server" => args.server = Some(value(&mut i, "--server")?),
            "--json" => args.json = true,
            "--smoke" => args.smoke = true,
            // Observability composes with every mode (including --smoke and
            // --stress), so neither flag counts toward the mode exclusion.
            "--obs" => args.obs = true,
            "--obs-json" => args.obs_json = Some(value(&mut i, "--obs-json")?),
            "--stress" => {
                args.stress = true;
                // Optionally followed by a pair count; another flag (or
                // nothing) means the default, a non-count is an error.
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    match v.parse::<u16>() {
                        Ok(p) if (1..=32767).contains(&p) => args.stress_pairs = Some(p),
                        _ => {
                            return usage_error(format!(
                                "fleet_sweep: --stress PAIRS must be in 1..=32767, got {v:?}"
                            ))
                        }
                    }
                    i += 1;
                }
            }
            "--stress-nodes" => {
                let v = value(&mut i, "--stress-nodes")?;
                match v.parse::<u32>() {
                    Ok(n) if (2..=65534).contains(&n) && n % 2 == 0 => args.stress_nodes = Some(n),
                    _ => {
                        return usage_error(format!(
                            "fleet_sweep: --stress-nodes expects an even node count in \
                             2..=65534 (counts beyond 254 use the v2 log encoding), got {v:?}"
                        ))
                    }
                }
            }
            other => {
                return usage_error(format!("fleet_sweep: unknown argument {other:?}"));
            }
        }
        i += 1;
    }
    let modes = [
        args.smoke,
        args.grid.is_some(),
        args.stress,
        args.stress_nodes.is_some(),
    ]
    .iter()
    .filter(|m| **m)
    .count();
    if modes > 1 {
        return usage_error(
            "fleet_sweep: --smoke, --grid, --stress and --stress-nodes are mutually \
             exclusive"
                .to_string(),
        );
    }
    if args.shard_addr.is_some() && argv.len() != 2 {
        return usage_error(
            "fleet_sweep: --shard ADDR is internal (spawned by --shards) and must be \
             the only argument"
                .to_string(),
        );
    }
    if args.cache.is_some() && args.no_cache {
        return usage_error("fleet_sweep: --cache and --no-cache conflict".to_string());
    }
    if (args.shards.is_some() || args.cache.is_some() || args.no_cache)
        && (args.smoke || args.stress_nodes.is_some())
    {
        return usage_error(
            "fleet_sweep: --shards/--cache/--no-cache apply to grid sweeps; --smoke and \
             --stress-nodes are gates with their own fixed execution"
                .to_string(),
        );
    }
    if args.server.is_some()
        && (args.smoke
            || args.stress_nodes.is_some()
            || args.shards.is_some()
            || args.cache.is_some()
            || args.no_cache
            || args.threads_set)
    {
        return usage_error(
            "fleet_sweep: --server runs the grid on the daemon — execution flags \
             (--threads/--shards/--cache/--no-cache) and the gate modes stay local"
                .to_string(),
        );
    }
    Ok(args)
}

/// Loads a built-in grid and applies the CLI axis overrides.
fn built_in_grid(text: &str, args: &Args) -> GridSpec {
    let mut grid = GridSpec::parse(text).expect("checked-in grid must parse");
    if let Some(secs) = args.seconds {
        grid.override_seconds(secs);
    }
    if let Some(seeds) = args.seeds {
        grid.override_seed_count(seeds);
    }
    if let Some(pairs) = args.stress_pairs {
        grid.override_pairs(pairs);
    }
    grid
}

fn run_timed(threads: usize, batch: Vec<Scenario>) -> (u64, Duration, String) {
    let report = FleetRunner::new(threads).run(batch);
    (report.digest(), report.wall_clock, report.summary_table())
}

/// Runs a grid as a fleet of spawned shard processes (no cache) and
/// returns the stream digest plus the wall clock.
fn run_shards_timed(
    grid_text: &str,
    overrides: GridOverrides,
    shards: u32,
    threads: usize,
) -> Result<(u64, Duration), String> {
    let exe = std::env::current_exe().map_err(|why| format!("cannot locate own binary: {why}"))?;
    let options = DistOptions {
        shards,
        threads,
        cache_dir: None,
    };
    let report = dist::run_sweep_spawned(&exe, grid_text, overrides, &options, |_| {})
        .map_err(|why| why.to_string())?;
    Ok((report.digest(), report.wall_clock))
}

/// The streaming-retention gates.  The default zero-materialization path
/// must hold *no* raw entries at any instant — any nonzero peak means
/// something re-materialized a log.  The batch-digest path (kept for the
/// pinned pre-refactor digest) must stay bounded by the reorder window: a
/// quarter of the batch is generous next to the real window of ~4
/// scenarios, but far below what a re-buffering regression would retain.
fn smoke_retention_gate() -> Result<(), String> {
    let seeds: Vec<u64> = (1..=32).collect();
    let batch = scenarios::lpl_grid(
        &seeds,
        &[17, 26],
        0.18,
        hw_model::SimDuration::from_secs(60),
    );
    assert_eq!(batch.len(), 64);
    let streamed = FleetRunner::new(4).run(batch.clone());
    let total = streamed.total_log_entries();
    println!(
        "Retention (stream): 64-scenario batch produced {total} entries, peak held {}",
        streamed.peak_entries_held()
    );
    if total == 0 {
        return Err("retention gate batch produced no log entries".into());
    }
    if streamed.peak_entries_held() != 0 {
        return Err(format!(
            "zero-materialization path held {} raw entries — something is \
             re-materializing scenario logs",
            streamed.peak_entries_held()
        ));
    }
    if streamed.results.iter().any(|r| r.has_raw()) {
        return Err("raw NodeRunOutput retained on the streaming path".into());
    }
    let batched = FleetRunner::new(4).batch_digest().run(batch);
    let peak = batched.peak_entries_held();
    let bound = batched.total_log_entries() / 4;
    println!(
        "Retention (batch-digest): peak held {peak} of {} ({:.1} %)",
        batched.total_log_entries(),
        100.0 * peak as f64 / batched.total_log_entries().max(1) as f64
    );
    if peak == 0 || peak > bound {
        return Err(format!(
            "batch-digest peak {peak} outside (0, {bound}] — the reorder-window bound \
             no longer holds"
        ));
    }
    Ok(())
}

fn smoke(args: &Args) -> ExitCode {
    let batch = match built_in_grid(SMOKE_GRID, args).expand() {
        Ok(batch) => batch,
        Err(why) => {
            eprintln!("fleet_sweep: smoke grid failed to expand: {why}");
            return ExitCode::FAILURE;
        }
    };
    println!("Smoke grid: {} scenarios", batch.len());
    // Each configuration runs twice and the better wall-clock counts: a
    // single end-to-end sample is too noisy for the checked-in baseline,
    // and the repeat doubles as a same-thread-count reproducibility check.
    let (digest1, wall1a, table) = run_timed(1, batch.clone());
    let (digest1b, wall1b, _) = run_timed(1, batch.clone());
    let (digest4, wall4a, _) = run_timed(4, batch.clone());
    let (digest4b, wall4b, _) = run_timed(4, batch);
    let wall1 = wall1a.min(wall1b);
    let wall4 = wall4a.min(wall4b);
    println!("{table}");
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t1", wall1.as_nanos() as f64)
    );
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t4", wall4.as_nanos() as f64)
    );

    if digest1 != digest1b || digest4 != digest4b || digest1 != digest4 {
        eprintln!(
            "fleet_sweep: DETERMINISM FAILURE — digests t1 {digest1:#018x}/{digest1b:#018x}, t4 {digest4:#018x}/{digest4b:#018x}"
        );
        return ExitCode::FAILURE;
    }
    println!("Determinism: 1-thread and 4-thread reports are byte-identical ({digest1:#018x})");

    let speedup = wall1.as_secs_f64() / wall4.as_secs_f64().max(1e-9);
    println!(
        "Wall clock: {wall1:.1?} on 1 thread, {wall4:.1?} on 4 threads — {speedup:.2}x speedup"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Merge-loop health gate.  On a single CPU no speedup is possible, but
    // the 4-thread run must still track the 1-thread run closely: with the
    // lock-free merge watermark, workers only park on the reorder-window
    // gate when genuinely out of window, so a t4/t1 blowout means the
    // backpressure handoff regressed.  The stall instrumentation
    // (`runner.backpressure_stalls`, `runner.merge_wakeups`) lands in the
    // `--obs` profile's merged counters for attribution.
    let ratio = wall4.as_secs_f64() / wall1.as_secs_f64().max(1e-9);
    if cores < 2 {
        println!(
            "(single-CPU host: speedup threshold not enforced; t4/t1 ratio {ratio:.3} \
             gated at 1.15)"
        );
        if ratio > 1.15 {
            eprintln!(
                "fleet_sweep: MERGE-STALL FAILURE — 4-thread wall {wall4:.1?} is {ratio:.2}x \
                 the 1-thread wall {wall1:.1?} on a single-CPU host (budget 1.15x); rerun \
                 with --obs and check runner.backpressure_stalls / runner.merge_wakeups"
            );
            return ExitCode::FAILURE;
        }
    } else if speedup < args.min_speedup {
        eprintln!(
            "fleet_sweep: SPEEDUP FAILURE — {speedup:.2}x < required {:.2}x on a {cores}-CPU host",
            args.min_speedup
        );
        return ExitCode::FAILURE;
    }

    // Fleet-of-fleets gate: the same smoke grid through 2 spawned shard
    // processes × 2 threads each must fold the byte-identical stream
    // digest the in-process runs just agreed on.  Two samples, best wall —
    // same policy as the thread-count lines above.
    let overrides = GridOverrides {
        seconds: args.seconds,
        seed_count: args.seeds,
        pairs: None,
    };
    let shards_run = run_shards_timed(SMOKE_GRID, overrides, 2, 2).and_then(|(da, wa)| {
        run_shards_timed(SMOKE_GRID, overrides, 2, 2).map(|(db, wb)| (da, db, wa.min(wb)))
    });
    let (digest_s2a, digest_s2b, wall_s2) = match shards_run {
        Ok(outcome) => outcome,
        Err(why) => {
            eprintln!("fleet_sweep: SHARD FAILURE — {why}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_shards2", wall_s2.as_nanos() as f64)
    );
    if digest_s2a != digest_s2b || digest_s2a != digest1 {
        eprintln!(
            "fleet_sweep: DETERMINISM FAILURE — 2-shard digests {digest_s2a:#018x}/\
             {digest_s2b:#018x} vs in-process {digest1:#018x}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "Determinism: 2 shard processes × 2 threads fold the identical digest \
         ({digest_s2a:#018x}, {wall_s2:.1?})"
    );

    if let Err(why) = smoke_retention_gate() {
        eprintln!("fleet_sweep: RETENTION FAILURE — {why}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--stress-nodes N`: one N-node scenario through the heap scheduler and
/// the zero-materialization path, gated on holding zero raw entries.
fn stress_nodes(nodes: u32, args: &Args) -> ExitCode {
    let pairs = (nodes / 2) as u16;
    // Round like `GridSpec` expansion does, so `--stress-nodes --seconds X`
    // and a grid cell with `seconds = X` simulate the identical duration.
    let duration =
        hw_model::SimDuration::from_micros((args.seconds.unwrap_or(14.0) * 1e6).round() as u64);
    let scenario = scenarios::path_loss_stress(pairs, 1, duration);
    if !args.json {
        quanto_bench::header(
            "fleet_sweep --stress-nodes",
            "single-scenario heap-scheduler stress on the zero-materialization path",
        );
        println!(
            "{nodes} nodes ({pairs} Bounce pairs along a line), {:.0} s simulated, \
             {} worker thread(s)",
            duration.as_secs_f64(),
            args.threads
        );
    }
    let report = FleetRunner::new(args.threads).run(vec![scenario]);
    if args.json {
        // The JSON document already carries total_log_entries,
        // peak_entries_held and the digest; no extra stdout lines that
        // would corrupt machine-readable output.
        println!("{}", report.summary_json());
    } else {
        println!("{}", report.summary_table());
        println!(
            "Retention: {} entries streamed, peak held {} (digest {:#018x})",
            report.total_log_entries(),
            report.peak_entries_held(),
            report.digest()
        );
    }
    let total = report.total_log_entries();
    if total == 0 {
        eprintln!("fleet_sweep: STRESS FAILURE — the stress scenario produced no entries");
        return ExitCode::FAILURE;
    }
    if report.peak_entries_held() != 0 {
        eprintln!(
            "fleet_sweep: RETENTION FAILURE — {} raw entries held on the \
             zero-materialization path",
            report.peak_entries_held()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Harvests and emits the obs profile: the human table to stdout (stderr
/// when `--json` owns stdout), and the structured JSON document — profile
/// aggregates, merged metrics and a chrome://tracing `trace_events` array —
/// to the `--obs-json` file.  A no-op unless observability was enabled.
fn emit_obs(args: &Args) -> Result<(), String> {
    if !quanto_obs::enabled() {
        return Ok(());
    }
    quanto_obs::flush_thread();
    let harvest = quanto_obs::harvest();
    let profile = quanto_obs::Profile::build(&harvest);
    let table = profile.render_table(&harvest, 10);
    if args.json {
        eprint!("{table}");
    } else {
        print!("{table}");
    }
    if let Some(path) = &args.obs_json {
        std::fs::write(path, profile.to_json(&harvest))
            .map_err(|why| format!("cannot write obs profile {path:?}: {why}"))?;
        if args.json {
            eprintln!("obs profile written to {path}");
        } else {
            println!("obs profile written to {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(why) => {
            eprintln!("{why}");
            return ExitCode::from(2);
        }
    };
    // Shard-worker mode: dial the coordinator, execute chunks, exit.  The
    // parent process owns all reporting.
    if let Some(addr) = &args.shard_addr {
        return match dist::run_shard(addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(why) => {
                eprintln!("fleet_sweep: shard worker failed: {why}");
                ExitCode::FAILURE
            }
        };
    }
    if args.obs || args.obs_json.is_some() {
        quanto_obs::set_enabled(true);
    }
    let code = run_mode(&args);
    if let Err(why) = emit_obs(&args) {
        eprintln!("fleet_sweep: OBS FAILURE — {why}");
        return ExitCode::FAILURE;
    }
    code
}

fn run_mode(args: &Args) -> ExitCode {
    if args.smoke {
        quanto_bench::header(
            "fleet_sweep --smoke",
            "determinism (all 4 medium kinds) + speedup + retention gates",
        );
        return smoke(args);
    }
    if let Some(nodes) = args.stress_nodes {
        return stress_nodes(nodes, args);
    }

    // Grid sweeps keep the grid *text*: the distributed path ships it to
    // the shard processes verbatim (each re-expands identically), and the
    // in-process path parses the same bytes — one source of truth for both.
    let (grid_text, source) = match &args.grid {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => (text, path.clone()),
            Err(why) => {
                eprintln!("fleet_sweep: cannot read grid file {path:?}: {why}");
                return ExitCode::FAILURE;
            }
        },
        None if args.stress => (STRESS_GRID.to_string(), "built-in stress grid".to_string()),
        None => (
            DEFAULT_GRID.to_string(),
            "built-in default grid".to_string(),
        ),
    };
    let overrides = GridOverrides {
        seconds: args.seconds,
        seed_count: args.seeds,
        pairs: args.stress_pairs,
    };
    let grid = match GridSpec::parse(&grid_text) {
        Ok(mut grid) => {
            overrides.apply(&mut grid);
            grid
        }
        Err(why) => {
            eprintln!("fleet_sweep: {source}: {why}");
            return ExitCode::FAILURE;
        }
    };
    let batch = match grid.expand() {
        Ok(batch) => batch,
        Err(why) => {
            eprintln!("fleet_sweep: {source}: {why}");
            return ExitCode::FAILURE;
        }
    };
    // Client mode: the daemon executes; this process streams and prints.
    // The local parse/expand above already validated the grid, so a
    // daemon-side rejection can only be version skew or a daemon problem.
    if let Some(addr) = &args.server {
        return run_served(addr, &grid_text, overrides, &grid.name, batch.len(), args);
    }

    let shards = args.shards.unwrap_or(1);
    let cache_dir = args.cache_dir();

    if !args.json {
        quanto_bench::header(
            "Fleet sweep — composable scenario grids over the shared engine",
            "ROADMAP: user-composable grid descriptions, zero-materialization runs",
        );
        println!(
            "Grid {:?}: {} scenarios, {} worker thread(s)",
            grid.name,
            batch.len(),
            args.threads
        );
        if shards >= 2 {
            println!(
                "Distributed across {shards} shard processes × {} thread(s) each",
                args.threads
            );
        }
        match &cache_dir {
            Some(dir) => println!("Result cache: {}", dir.display()),
            None => println!("Result cache: disabled"),
        }
    }

    // Progress prints on the merge thread, in submission order, as
    // scenarios complete — whichever shard or cache entry produced them.
    let json = args.json;
    let progress = |p: FleetProgress| {
        if json {
            println!("{}", p.to_json());
        } else {
            let summary = p
                .summaries
                .iter()
                .map(|s| {
                    format!(
                        "node {}: {:.3} mW, {} entries",
                        s.node,
                        s.average_power.as_milli_watts(),
                        s.log_entries
                    )
                })
                .collect::<Vec<_>>()
                .join("; ");
            let delivery = match p.medium_counters {
                Some(c) => format!(" — delivered {}, lost {}", c.delivered, c.lost()),
                None => String::new(),
            };
            let eta = match p.eta_ms {
                Some(ms) => format!(", eta {:.1} s", ms as f64 / 1e3),
                None => String::new(),
            };
            let origin = match (p.cache_hit, p.shard) {
                (true, _) => " [cache]".to_string(),
                (false, Some(shard)) => format!(" [shard {shard}]"),
                (false, None) => String::new(),
            };
            println!(
                "[{}/{}] {} ({}) — {summary}{delivery} [{:.1} s{eta}]{origin}",
                p.completed,
                p.total,
                p.name,
                p.medium_kind,
                p.elapsed_ms as f64 / 1e3
            );
        }
    };

    let report = if shards >= 2 {
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(why) => {
                eprintln!("fleet_sweep: cannot locate own binary for shard spawning: {why}");
                return ExitCode::FAILURE;
            }
        };
        let options = DistOptions {
            shards,
            threads: args.threads,
            cache_dir: cache_dir.clone(),
        };
        match dist::run_sweep_spawned(&exe, &grid_text, overrides, &options, progress) {
            Ok(report) => report,
            Err(why) => {
                eprintln!("fleet_sweep: distributed sweep failed: {why}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let cache = match &cache_dir {
            Some(dir) => match ResultCache::open(dir) {
                Ok(cache) => Some(cache),
                Err(why) => {
                    eprintln!("fleet_sweep: cannot open cache {}: {why}", dir.display());
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        FleetRunner::new(args.threads).run_with_progress_cached(batch, cache.as_ref(), progress)
    };

    if args.json {
        println!("{}", report.summary_json());
    } else {
        println!("{}", report.summary_table());
        println!(
            "Batch digest {:#018x} — identical for any --threads or --shards value.",
            report.digest()
        );
        if let Some(stats) = report.cache_stats() {
            println!(
                "Cache: {} hits, {} misses, {} writes.",
                stats.hits, stats.misses, stats.writes
            );
        }
        println!(
            "Raw entries: {} total, peak held {} (the zero-materialization path never \
             holds a log).",
            report.total_log_entries(),
            report.peak_entries_held()
        );
    }
    ExitCode::SUCCESS
}

/// Scans the decimal run right after `marker` out of a JSON document the
/// wire reader cannot parse (served documents carry decimal floats).
fn scan_field<'a>(doc: &'a str, marker: &str, until: char) -> Option<&'a str> {
    let start = doc.find(marker)? + marker.len();
    let end = doc[start..].find(until)?;
    Some(&doc[start..start + end])
}

/// `--server ADDR`: ship the grid to the daemon, stream its progress, and
/// print the served summary.  With `--json` every document prints
/// verbatim, so the output is byte-compatible with an in-process
/// `--json` sweep's progress and summary lines.
fn run_served(
    addr: &str,
    grid_text: &str,
    overrides: GridOverrides,
    grid_name: &str,
    total: usize,
    args: &Args,
) -> ExitCode {
    if !args.json {
        quanto_bench::header(
            "Fleet sweep — served",
            "quanto-serve daemon: shared worker pool, live multi-tenant sweeps",
        );
        println!("Grid {grid_name:?}: {total} scenarios via the daemon at {addr}");
    }
    let json = args.json;
    let progress = |event: &str| {
        if json {
            println!("{event}");
        } else {
            let completed = scan_field(event, "\"completed\":", ',').unwrap_or("?");
            let total = scan_field(event, "\"total\":", ',').unwrap_or("?");
            let name = scan_field(event, "\"scenario\":\"", '"').unwrap_or("?");
            let medium = scan_field(event, "\"medium\":\"", '"').unwrap_or("?");
            let origin = if event.contains("\"cache_hit\":true") {
                " [cache]"
            } else {
                ""
            };
            println!("[{completed}/{total}] {name} ({medium}){origin}");
        }
    };
    match quanto_serve::client::run_sweep(addr, grid_text, &overrides, progress) {
        Ok(outcome) => {
            if args.json {
                println!("{}", outcome.summary);
            } else {
                let digest =
                    quanto_serve::client::digest_of(&outcome.summary).unwrap_or("<missing>");
                println!(
                    "Served sweep complete: job {} — {} scenarios ({} answered warm from \
                     the daemon's cache), digest {digest}.",
                    outcome.job, outcome.total, outcome.warm
                );
                println!("The digest is byte-identical to the same grid run in-process.");
            }
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("fleet_sweep: served sweep failed: {why}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::SimDuration;

    fn args(tokens: &[&str]) -> Result<Args, String> {
        parse_args(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// The checked-in grid files must reproduce the hand-written grids the
    /// harness shipped before they existed, scenario for scenario — that
    /// equality is what carries the digest pins over to the config files.
    #[test]
    fn default_grid_file_matches_the_legacy_hardcoded_grid() {
        let d = SimDuration::from_secs(14);
        let seeds: Vec<u64> = (1..=4).collect();
        let mut legacy = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, d);
        legacy.push(Scenario::blink(d));
        legacy.extend(scenarios::medium_grid(d));
        let parsed = GridSpec::parse(DEFAULT_GRID).unwrap().expand().unwrap();
        assert_eq!(parsed, legacy);
    }

    #[test]
    fn smoke_grid_file_matches_the_legacy_smoke_grid() {
        let seeds: Vec<u64> = (1..=8).collect();
        let mut legacy = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, SimDuration::from_secs(1800));
        legacy.push(Scenario::blink(SimDuration::from_secs(900)));
        legacy.push(
            Scenario::bounce(SimDuration::from_secs(30))
                .with_seed(1)
                .named("bounce_seed1"),
        );
        legacy.push(
            Scenario::bounce(SimDuration::from_secs(30))
                .with_seed(2)
                .named("bounce_seed2"),
        );
        legacy.extend(scenarios::medium_grid(SimDuration::from_secs(30)));
        let parsed = GridSpec::parse(SMOKE_GRID).unwrap().expand().unwrap();
        assert_eq!(parsed, legacy);
    }

    #[test]
    fn stress_grid_file_matches_the_legacy_stress_batch() {
        let d = SimDuration::from_secs(14);
        let legacy: Vec<Scenario> = (1..=4)
            .map(|seed| scenarios::path_loss_stress(8, seed, d))
            .collect();
        let parsed = GridSpec::parse(STRESS_GRID).unwrap().expand().unwrap();
        assert_eq!(parsed, legacy);
        // And the --stress PAIRS override rescales the line placement.
        let mut grid = GridSpec::parse(STRESS_GRID).unwrap();
        grid.override_pairs(3);
        let parsed = grid.expand().unwrap();
        let legacy: Vec<Scenario> = (1..=4)
            .map(|seed| scenarios::path_loss_stress(3, seed, d))
            .collect();
        assert_eq!(parsed, legacy);
    }

    /// The example grid in the repo root must stay runnable — CI executes
    /// it, and the README points users at it.
    #[test]
    fn example_grid_file_parses_and_expands() {
        let text = include_str!("../../../../examples/sweep.grid");
        let batch = GridSpec::parse(text).unwrap().expand().unwrap();
        assert!(batch.len() >= 10, "example should show real axes");
        assert!(batch.iter().any(|s| s.medium.kind() == "path_loss"));
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        for bad in [
            &["--sedes", "4"][..],
            &["--seconds"][..],
            &["--seconds", "abc"][..],
            &["--threads", "0"][..],
            &["--stress", "0"][..],
            &["--stress", "40000"][..],
            &["--stress-nodes", "0"][..],
            &["--stress-nodes", "7"][..],
            &["--stress-nodes", "70000"][..],
            &["--stress-nodes", "abc"][..],
            &["--smoke", "--stress"][..],
            &["extra"][..],
            // Shard and cache flags are strictly validated too.
            &["--shards"][..],
            &["--shards", "0"][..],
            &["--shards", "999"][..],
            &["--shards", "abc"][..],
            &["--cache"][..],
            &["--cache", "dir", "--no-cache"][..],
            &["--smoke", "--shards", "2"][..],
            &["--smoke", "--cache", "dir"][..],
            &["--smoke", "--no-cache"][..],
            &["--stress-nodes", "254", "--shards", "2"][..],
            &["--stress-nodes", "254", "--no-cache"][..],
            // The internal shard spelling must stand alone.
            &["--shard"][..],
            &["--shard", "127.0.0.1:1", "--json"][..],
            &["--json", "--shard", "127.0.0.1:1"][..],
        ] {
            let err = args(bad).expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn known_flags_parse() {
        let a = args(&[
            "--seconds",
            "2.5",
            "--threads",
            "3",
            "--seeds",
            "2",
            "--json",
        ])
        .unwrap();
        assert_eq!(a.seconds, Some(2.5));
        assert_eq!(a.threads, 3);
        assert_eq!(a.seeds, Some(2));
        assert!(a.json);
        let a = args(&["--stress"]).unwrap();
        assert!(a.stress && a.stress_pairs.is_none());
        let a = args(&["--stress", "12"]).unwrap();
        assert_eq!(a.stress_pairs, Some(12));
        let a = args(&["--stress", "999"]).unwrap();
        assert_eq!(a.stress_pairs, Some(999));
        let a = args(&["--stress-nodes", "254"]).unwrap();
        assert_eq!(a.stress_nodes, Some(254));
        // Beyond the old 254-node cap: valid since the v2 log encoding.
        let a = args(&["--stress-nodes", "1024"]).unwrap();
        assert_eq!(a.stress_nodes, Some(1024));
        let a = args(&["--stress-nodes", "10000"]).unwrap();
        assert_eq!(a.stress_nodes, Some(10000));
    }

    /// The shard and cache flags: defaults, overrides, and the internal
    /// `--shard` spelling.
    #[test]
    fn shard_and_cache_flags_parse() {
        let a = args(&[]).unwrap();
        assert_eq!(a.shards, None);
        assert_eq!(a.cache_dir(), Some(PathBuf::from(DEFAULT_CACHE_DIR)));
        let a = args(&["--shards", "4", "--cache", "/tmp/c"]).unwrap();
        assert_eq!(a.shards, Some(4));
        assert_eq!(a.cache_dir(), Some(PathBuf::from("/tmp/c")));
        let a = args(&["--no-cache", "--grid", "g.grid"]).unwrap();
        assert!(a.no_cache);
        assert_eq!(a.cache_dir(), None);
        let a = args(&["--stress", "--shards", "2"]).unwrap();
        assert!(a.stress);
        assert_eq!(a.shards, Some(2));
        let a = args(&["--shard", "127.0.0.1:9"]).unwrap();
        assert_eq!(a.shard_addr.as_deref(), Some("127.0.0.1:9"));
    }

    /// `--server` hands execution to the daemon: the grid and axis
    /// overrides travel, the local execution flags and gates are rejected.
    #[test]
    fn server_flag_parses_and_rejects_local_execution_flags() {
        let a = args(&["--server", "127.0.0.1:7645"]).unwrap();
        assert_eq!(a.server.as_deref(), Some("127.0.0.1:7645"));
        let a = args(&[
            "--server",
            "h:1",
            "--grid",
            "g.grid",
            "--seconds",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(a.server.is_some() && a.grid.is_some() && a.json);
        assert_eq!(a.seconds, Some(2.0));
        let a = args(&["--server", "h:1", "--stress", "4", "--seeds", "2"]).unwrap();
        assert!(a.stress);
        assert_eq!(a.stress_pairs, Some(4));
        for bad in [
            &["--server"][..],
            &["--server", "h:1", "--threads", "2"][..],
            &["--server", "h:1", "--shards", "2"][..],
            &["--server", "h:1", "--cache", "dir"][..],
            &["--server", "h:1", "--no-cache"][..],
            &["--server", "h:1", "--smoke"][..],
            &["--server", "h:1", "--stress-nodes", "4"][..],
        ] {
            let err = args(bad).expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("usage:"), "{err}");
        }
    }

    /// The obs flags compose with every mode instead of counting toward the
    /// mode exclusion — the whole point is profiling the existing sweeps.
    #[test]
    fn obs_flags_parse_and_compose_with_modes() {
        let a = args(&["--obs"]).unwrap();
        assert!(a.obs && a.obs_json.is_none());
        let a = args(&["--smoke", "--obs", "--obs-json", "obs.json"]).unwrap();
        assert!(a.smoke && a.obs);
        assert_eq!(a.obs_json.as_deref(), Some("obs.json"));
        let a = args(&["--stress", "--obs-json", "p.json"]).unwrap();
        assert!(a.stress);
        assert_eq!(a.obs_json.as_deref(), Some("p.json"));
        let err = args(&["--obs-json"]).expect_err("missing value");
        assert!(err.contains("usage:"), "{err}");
    }
}
