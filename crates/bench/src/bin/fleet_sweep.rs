//! `fleet_sweep`: the parallel scenario-grid harness.
//!
//! Runs a seed × channel LPL grid (plus a Blink profile and a Bounce
//! exchange) through `quanto-fleet`'s `FleetRunner`, sharded across worker
//! threads, and prints the merged per-scenario summary table.
//!
//! ```text
//! fleet_sweep [--seconds N] [--threads N] [--seeds N] [--smoke]
//! ```
//!
//! `--smoke` is the CI job: it runs the grid twice on 1 thread and twice on
//! 4, verifies all four reports are byte-identical (the determinism contract
//! of the fleet subsystem), prints the best wall-clock per thread count as
//! bench-compatible summary lines for `bench_check`, and — on hosts with
//! more than one CPU — fails unless the 4-thread run shows at least the
//! required speedup (default 1.5×, `--min-speedup X` to override).
//!
//! Note on the baseline: the `fleet/sweep_smoke_t4` wall-clock depends on
//! the recording host's core count, which the single-core `calibration/spin`
//! normalization cannot correct for — on hosts with more parallelism than
//! the recorder it can only under-trigger, and the real parallelism gate is
//! the speedup check here, not the baseline entry.

use hw_model::SimDuration;
use quanto_bench::baseline::bench_line;
use quanto_fleet::{scenarios, FleetRunner, Scenario};
use std::process::ExitCode;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The sweep grid: `seeds` × channels {17, 26} LPL scenarios under the
/// paper's 18 % interference, plus a Blink profile and a Bounce exchange.
fn grid(seeds: u64, duration: SimDuration) -> Vec<Scenario> {
    let seeds: Vec<u64> = (1..=seeds).collect();
    let mut grid = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, duration);
    grid.push(Scenario::blink(duration));
    grid.push(Scenario::bounce(duration));
    grid
}

/// The smoke grid: sized so every cell costs a comparable few tens of host
/// milliseconds (LPL and Blink are cheap per simulated second, Bounce is
/// not), which is what makes the 1-vs-4-thread wall-clock comparison a fair
/// parallelism measurement rather than a longest-scenario measurement.
fn smoke_grid() -> Vec<Scenario> {
    let seeds: Vec<u64> = (1..=8).collect();
    let half_hour = SimDuration::from_secs(1800);
    let mut grid = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, half_hour);
    grid.push(Scenario::blink(SimDuration::from_secs(900)));
    grid.push(
        Scenario::bounce(SimDuration::from_secs(30))
            .with_seed(1)
            .named("bounce_seed1"),
    );
    grid.push(
        Scenario::bounce(SimDuration::from_secs(30))
            .with_seed(2)
            .named("bounce_seed2"),
    );
    grid
}

fn run_timed(threads: usize, batch: Vec<Scenario>) -> (u64, Duration, String) {
    let report = FleetRunner::new(threads).run(batch);
    (report.digest(), report.wall_clock, report.summary_table())
}

fn smoke(min_speedup: f64) -> ExitCode {
    let batch = smoke_grid();
    println!("Smoke grid: {} scenarios", batch.len());
    // Each configuration runs twice and the better wall-clock counts: a
    // single end-to-end sample is too noisy for the checked-in baseline,
    // and the repeat doubles as a same-thread-count reproducibility check.
    let (digest1, wall1a, table) = run_timed(1, batch.clone());
    let (digest1b, wall1b, _) = run_timed(1, batch.clone());
    let (digest4, wall4a, _) = run_timed(4, batch.clone());
    let (digest4b, wall4b, _) = run_timed(4, batch);
    let wall1 = wall1a.min(wall1b);
    let wall4 = wall4a.min(wall4b);
    println!("{table}");
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t1", wall1.as_nanos() as f64)
    );
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t4", wall4.as_nanos() as f64)
    );

    if digest1 != digest1b || digest4 != digest4b || digest1 != digest4 {
        eprintln!(
            "fleet_sweep: DETERMINISM FAILURE — digests t1 {digest1:#018x}/{digest1b:#018x}, t4 {digest4:#018x}/{digest4b:#018x}"
        );
        return ExitCode::FAILURE;
    }
    println!("Determinism: 1-thread and 4-thread reports are byte-identical ({digest1:#018x})");

    let speedup = wall1.as_secs_f64() / wall4.as_secs_f64().max(1e-9);
    println!(
        "Wall clock: {wall1:.1?} on 1 thread, {wall4:.1?} on 4 threads — {speedup:.2}x speedup"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        println!("(single-CPU host: speedup threshold not enforced, determinism was)");
        return ExitCode::SUCCESS;
    }
    if speedup < min_speedup {
        eprintln!(
            "fleet_sweep: SPEEDUP FAILURE — {speedup:.2}x < required {min_speedup:.2}x on a {cores}-CPU host"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let duration = quanto_bench::duration_from_args(14);
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    if args.iter().any(|a| a == "--smoke") {
        quanto_bench::header("fleet_sweep --smoke", "determinism + speedup gate");
        return smoke(min_speedup);
    }

    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| FleetRunner::host_parallel().threads());

    quanto_bench::header(
        "Fleet sweep — seed × channel grid over the shared engine",
        "ROADMAP: parallel multi-node runs",
    );
    let batch = grid(seeds, duration);
    println!(
        "{} scenarios ({} LPL + blink + bounce), {} worker thread(s), {:.0} s simulated each",
        batch.len(),
        batch.len() - 2,
        threads,
        duration.as_secs_f64()
    );
    let report = FleetRunner::new(threads).run(batch);
    println!("{}", report.summary_table());
    println!(
        "Batch digest {:#018x} — identical for any --threads value.",
        report.digest()
    );
    ExitCode::SUCCESS
}
