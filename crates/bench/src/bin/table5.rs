//! Table 5: the cost of instrumenting the OS, and where the same
//! instrumentation lives in this reproduction.

use analysis::TextTable;
use quanto_apps::instrumentation_table;

fn main() {
    quanto_bench::header("Table 5 — instrumentation cost", "Section 4.4");
    let rows = instrumentation_table();
    let mut t = TextTable::new(vec![
        "Abstraction",
        "Paper files",
        "Paper LOC",
        "Role",
        "Reproduction module",
    ]);
    for r in &rows {
        t.row(vec![
            r.abstraction.to_string(),
            r.paper_files.to_string(),
            r.paper_lines.to_string(),
            r.role.to_string(),
            r.our_module.to_string(),
        ]);
    }
    println!("{}", t.render());
    let core: u32 = rows
        .iter()
        .filter(|r| {
            matches!(
                r.abstraction,
                "Tasks" | "Timers" | "Arbiter" | "Interrupts" | "Active Msg."
            )
        })
        .map(|r| r.paper_lines)
        .sum();
    let drivers: u32 = rows
        .iter()
        .filter(|r| matches!(r.abstraction, "LEDs" | "CC2420 Radio" | "SHT11"))
        .map(|r| r.paper_lines)
        .sum();
    println!("Paper totals: {core} LOC for core OS primitives, {drivers} LOC for drivers, 1275 LOC of new infrastructure.");
}
