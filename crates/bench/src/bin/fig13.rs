//! Figure 13: 802.11 b/g interference versus low-power listening — cumulative
//! energy, radio duty cycle, false-positive rate and average power on
//! 802.15.4 channel 17 (under the access point) versus channel 26 (clear).
//!
//! The two channels are independent scenarios, so they run as a fleet batch
//! sharded across worker threads — the data-driven form of what used to be
//! two back-to-back sequential runs (and byte-identical to them).

use analysis::{pct, TextTable};
use quanto_fleet::{scenarios, FleetRunner};

fn main() {
    let duration = quanto_bench::duration_from_args(14);
    quanto_bench::header(
        "Figure 13 — 802.11 interference on low-power listening",
        "Section 4.3",
    );
    // retain_raw: the LPL analysis below re-reads the raw logs.
    let mut results = FleetRunner::host_parallel()
        .retain_raw()
        .run(scenarios::lpl_comparison(duration))
        .into_results();
    let ch17 = scenarios::into_lpl_run(results.remove(0));
    let ch26 = scenarios::into_lpl_run(results.remove(0));

    let mut summary = TextTable::new(vec![
        "Channel",
        "Duty cycle",
        "Wake-ups",
        "False positives",
        "FP rate",
        "Avg power (mW)",
        "Total energy (mJ)",
    ])
    .with_title("LPL under interference (802.11b on Wi-Fi channel 6)");
    for run in [&ch17, &ch26] {
        let total = run
            .cumulative_energy
            .last()
            .map(|(_, e)| *e)
            .unwrap_or(hw_model::Energy::ZERO);
        summary.row(vec![
            format!("{}", run.channel),
            pct(run.duty_cycle),
            run.wakeups.to_string(),
            run.false_positives.to_string(),
            pct(run.false_positive_rate),
            format!("{:.3}", run.average_power.as_milli_watts()),
            format!("{:.2}", total.as_milli_joules()),
        ]);
    }
    println!("{}", summary.render());
    println!("Paper: channel 17 — 5.58 % duty cycle, 17.8 % false positives, 1.43 mW;");
    println!("       channel 26 — 2.22 % duty cycle, no false positives, 0.92 mW.");

    println!("\nCumulative energy over time (one point per second):");
    let mut series = TextTable::new(vec!["t (s)", "ch 17 (mJ)", "ch 26 (mJ)"]);
    let sample = |run: &quanto_apps::LplRun, t_s: f64| {
        run.cumulative_energy
            .iter()
            .take_while(|(t, _)| t.as_secs_f64() <= t_s)
            .last()
            .map(|(_, e)| e.as_milli_joules())
            .unwrap_or(0.0)
    };
    let secs = duration.as_secs_f64() as u64;
    for s in 0..=secs {
        series.row(vec![
            s.to_string(),
            format!("{:.2}", sample(&ch17, s as f64)),
            format!("{:.2}", sample(&ch26, s as f64)),
        ]);
    }
    println!("{}", series.render());
}
