//! Figure 14: detail of a normal LPL wake-up versus a false-positive
//! wake-up, showing radio power-state episodes and the CPU activities
//! involved (VTimer for the scheduled check, the unbound receive proxy for
//! the false positive).

use analysis::{episode_durations, TextTable};
use hw_model::catalog::radio_rx_state;
use quanto_fleet::{scenarios, FleetRunner, Scenario};

fn main() {
    let duration = quanto_bench::duration_from_args(14);
    quanto_bench::header(
        "Figure 14 — normal vs false-positive LPL wake-ups",
        "Section 4.3",
    );
    // A one-scenario fleet batch: the same declarative spec the sweeps use,
    // byte-identical to the old sequential run_lpl_experiment call.
    // retain_raw: the wake-up classification re-reads the raw log.
    let report = FleetRunner::sequential()
        .retain_raw()
        .run(vec![Scenario::lpl(17, 0.18, duration)]);
    let run = scenarios::into_lpl_run(report.into_results().remove(0));
    let ctx = &run.context;
    let out = &run.output;

    let intervals = analysis::power_intervals(&out.log, &ctx.catalog, Some(out.final_stamp));
    let episodes = episode_durations(&intervals, ctx.sinks.radio_rx, |s| {
        s == radio_rx_state::LISTEN
    });
    let mut t = TextTable::new(vec!["wake-up #", "radio on-time (ms)", "classification"])
        .with_title("Radio wake-up episodes");
    for (i, d) in episodes.iter().enumerate() {
        let class = if d.as_millis_f64() > 50.0 {
            "false positive (energy detected, no packet)"
        } else {
            "normal wake-up"
        };
        t.row(vec![
            (i + 1).to_string(),
            format!("{:.1}", d.as_millis_f64()),
            class.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper: normal wake-ups return to sleep within a few ms; false positives keep the radio on ~100 ms."
    );
    println!(
        "Estimated radio listen draw from the regression: {} (paper: 18.46 mA / 61.8 mW at 3.35 V)",
        run.context
            .catalog
            .sink(ctx.sinks.radio_rx)
            .state(radio_rx_state::LISTEN)
            .current
    );

    println!("\nCPU activities during the first false positive:");
    if let Some((idx, _)) = episodes
        .iter()
        .enumerate()
        .find(|(_, d)| d.as_millis_f64() > 50.0)
    {
        // Locate that episode's time window.
        let mut seen = 0usize;
        let mut window = None;
        let mut in_ep = false;
        let mut start = hw_model::SimTime::ZERO;
        for iv in &intervals {
            let on = iv.states[ctx.sinks.radio_rx.as_usize()] == radio_rx_state::LISTEN;
            if on && !in_ep {
                start = iv.start;
            }
            if !on && in_ep {
                if seen == idx {
                    window = Some((start, iv.start));
                    break;
                }
                seen += 1;
            }
            in_ep = on;
        }
        if let Some((s, e)) = window {
            let segs =
                analysis::activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
            let mut t = TextTable::new(vec!["start (ms)", "end (ms)", "activity"]);
            for seg in segs
                .iter()
                .filter(|seg| seg.end > s && seg.start < e && !seg.label.is_idle())
            {
                t.row(vec![
                    format!("{:.3}", seg.start.as_millis_f64()),
                    format!("{:.3}", seg.end.as_millis_f64()),
                    ctx.label_name(seg.label),
                ]);
            }
            println!("{}", t.render());
        }
    } else {
        println!("(no false positive observed in this run — increase --seconds)");
    }
}
