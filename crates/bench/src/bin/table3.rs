//! Table 3 (and Figure 11): the complete Blink breakdown — time per
//! (hardware component, activity), the regression, energy per hardware
//! component and energy per activity.

use analysis::{pct, TextTable};
use quanto_apps::blink_profile;

fn main() {
    let duration = quanto_bench::duration_from_args(48);
    quanto_bench::header(
        "Table 3 — where the joules have gone in Blink",
        "Section 4.2.1",
    );
    let profile = blink_profile(duration);
    let bd = &profile.breakdown;
    let ctx = &profile.run.context;

    // (a) Time breakdown.
    let mut ta = TextTable::new(vec!["Device", "Activity", "Time (s)"])
        .with_title("Table 3a — time per (device, activity)");
    for ((dev, label), time) in &bd.time_per_device_activity {
        if time.as_secs_f64() < 0.0005 {
            continue;
        }
        ta.row(vec![
            ctx.device_name(*dev).to_string(),
            ctx.label_name(*label),
            format!("{:.4}", time.as_secs_f64()),
        ]);
    }
    println!("{}", ta.render());

    // (b) Regression result.
    let mut tb = TextTable::new(vec!["Column", "I (mA)", "P (mW)"])
        .with_title("Table 3b — regression result");
    for (i, col) in bd.regression.columns.iter().enumerate() {
        let p = bd.regression.power_uw[i];
        tb.row(vec![
            ctx.catalog.column_label(*col),
            format!("{:.3}", p / ctx.supply.as_volts() / 1000.0),
            format!("{:.3}", p / 1000.0),
        ]);
    }
    tb.row(vec![
        "Const.".to_string(),
        format!(
            "{:.3}",
            bd.regression.constant_uw / ctx.supply.as_volts() / 1000.0
        ),
        format!("{:.3}", bd.regression.constant_uw / 1000.0),
    ]);
    println!("{}", tb.render());

    // (c) Energy per hardware component.
    let mut tc = TextTable::new(vec!["Component", "Energy (mJ)"])
        .with_title("Table 3c — energy per hardware component");
    for (sink, e) in &bd.energy_per_sink {
        if e.as_milli_joules() < 0.001 {
            continue;
        }
        tc.row(vec![
            ctx.catalog.sink(*sink).name.clone(),
            format!("{:.2}", e.as_milli_joules()),
        ]);
    }
    tc.row(vec![
        "Const.".to_string(),
        format!("{:.2}", bd.constant_energy.as_milli_joules()),
    ]);
    tc.row(vec![
        "Total".to_string(),
        format!("{:.2}", bd.total_reconstructed.as_milli_joules()),
    ]);
    println!("{}", tc.render());

    // (d) Energy per activity.
    let mut td = TextTable::new(vec!["Activity", "Energy (mJ)"])
        .with_title("Table 3d — energy per activity");
    for (label, e) in &bd.energy_per_activity {
        if e.as_milli_joules() < 0.01 {
            continue;
        }
        td.row(vec![
            ctx.label_name(*label),
            format!("{:.2}", e.as_milli_joules()),
        ]);
    }
    td.row(vec![
        "Const.".to_string(),
        format!("{:.2}", bd.constant_energy.as_milli_joules()),
    ]);
    println!("{}", td.render());

    println!(
        "Total measured energy:      {:.2} mJ",
        bd.total_measured.as_milli_joules()
    );
    println!(
        "Total reconstructed energy: {:.2} mJ",
        bd.total_reconstructed.as_milli_joules()
    );
    println!(
        "Reconstruction error: {} (paper: 0.004 %)",
        pct(profile.reconstruction_error)
    );
    println!(
        "Log entries: {} over {:.0} s (paper: 597 over 48 s)",
        profile.log_entries,
        bd.total_time.as_secs_f64()
    );
    println!(
        "Logging share of active CPU time: {} (paper: 71.05 %); of total CPU time: {} (paper: 0.12 %)",
        pct(profile.logging_active_fraction),
        pct(profile.logging_cpu_fraction)
    );
    println!(
        "Energy spent logging: {:.2} mJ (paper: 0.41 mJ)",
        profile.logging_energy.as_milli_joules()
    );
}
