//! Figure 16: packet-transmission timing with interrupt-driven versus
//! DMA-based CPU↔radio communication.

use analysis::TextTable;
use quanto_apps::dma_comparison;

fn main() {
    quanto_bench::header(
        "Figure 16 — interrupt-driven vs DMA radio transfers",
        "Section 4.3",
    );
    let cmp = dma_comparison();

    let mut t = TextTable::new(vec![
        "SPI mode",
        "FIFO load (ms)",
        "Load interrupts",
        "send() to TX done (ms)",
    ])
    .with_title("Packet transmission timing (node 1's first Bounce packet)");
    for timing in [&cmp.interrupt, &cmp.dma] {
        t.row(vec![
            format!("{:?}", timing.mode),
            format!("{:.3}", timing.fifo_load.as_millis_f64()),
            timing.load_interrupts.to_string(),
            format!("{:.3}", timing.total.as_millis_f64()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "DMA FIFO load is {:.1}x faster than the interrupt-driven transfer (paper: at least 2x).",
        cmp.speedup()
    );
    println!(
        "Implication (paper): a DMA node wins medium access over an interrupt-driven node, subverting MAC fairness."
    );
}
