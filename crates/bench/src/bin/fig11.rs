//! Figure 11: activity and power profile of a Blink run — per-device
//! activity timelines, the detail of a transition, and the stacked power
//! reconstruction compared with the measured power.

use analysis::{reconstruct_power, TextTable};
use quanto_apps::{blink_profile, device_timelines};

fn main() {
    let duration = quanto_bench::duration_from_args(48);
    quanto_bench::header(
        "Figure 11 — Blink activity and power profile",
        "Section 4.2.1",
    );
    let profile = blink_profile(duration);
    let ctx = &profile.run.context;
    let out = &profile.run.output;

    // (a) Activity timeline per hardware component (first few seconds).
    println!("\n(a) Activities per hardware component (first 10 segments each):");
    for (device, segments) in device_timelines(&out.log, ctx, out.final_stamp, false) {
        if segments.is_empty() {
            continue;
        }
        let mut t = TextTable::new(vec!["start (ms)", "end (ms)", "activity"]).with_title(device);
        for (start, end, name) in segments.iter().take(10) {
            t.row(vec![
                format!("{:.3}", start.as_millis_f64()),
                format!("{:.3}", end.as_millis_f64()),
                name.clone(),
            ]);
        }
        println!("{}", t.render());
    }

    // (b) Detail of the transition around t = 8 s (all LEDs switch off).
    println!("(b) CPU activity detail around t = 8 s:");
    let segs = analysis::activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
    let mut t = TextTable::new(vec!["start (ms)", "end (ms)", "activity"]);
    for s in segs
        .iter()
        .filter(|s| s.start.as_millis_f64() >= 7_995.0 && s.start.as_millis_f64() <= 8_010.0)
    {
        t.row(vec![
            format!("{:.3}", s.start.as_millis_f64()),
            format!("{:.3}", s.end.as_millis_f64()),
            ctx.label_name(s.label),
        ]);
    }
    println!("{}", t.render());

    // (c) Stacked reconstructed power vs measured power.
    println!("(c) Stacked power reconstruction vs measured power (per steady state):");
    let intervals = analysis::power_intervals(&out.log, &ctx.catalog, Some(out.final_stamp));
    let steps = reconstruct_power(
        &intervals,
        &ctx.catalog,
        &profile.breakdown.regression,
        ctx.energy_per_count,
    );
    let mut t = TextTable::new(vec![
        "start (s)",
        "dur (ms)",
        "reconstructed (mW)",
        "measured (mW)",
        "components",
    ]);
    for s in steps
        .iter()
        .filter(|s| s.end.duration_since(s.start).as_millis_f64() > 100.0)
        .take(20)
    {
        let comps = s
            .per_sink
            .iter()
            .map(|(sink, p)| {
                format!(
                    "{}={:.1}mW",
                    ctx.catalog.sink(*sink).name,
                    p.as_milli_watts()
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            format!("{:.2}", s.start.as_secs_f64()),
            format!("{:.1}", s.end.duration_since(s.start).as_millis_f64()),
            format!("{:.2}", s.total.as_milli_watts()),
            format!("{:.2}", s.measured.as_milli_watts()),
            comps,
        ]);
    }
    println!("{}", t.render());
    println!(
        "Whole-run reconstruction error: {:.4} % (paper: 0.004 %)",
        profile.reconstruction_error * 100.0
    );
}
