//! Table 2 (and the iCount linearity check behind Figure 10): oscilloscope
//! currents for the eight steady states of Blink, and the per-LED currents
//! recovered by the regression.

use analysis::{pct, TextTable};
use quanto_apps::calibration_experiment;

fn main() {
    let duration = quanto_bench::duration_from_args(48);
    quanto_bench::header("Table 2 — Blink calibration", "Section 4.1");
    let cal = calibration_experiment(duration);

    let mut obs = TextTable::new(vec![
        "L0",
        "L1",
        "L2",
        "Scope I (mA)",
        "Fitted I (mA)",
        "Time (s)",
    ])
    .with_title("Steady-state currents (X, Y and XΠ columns)");
    for row in &cal.rows {
        obs.row(vec![
            u8::from(row.leds[0]).to_string(),
            u8::from(row.leds[1]).to_string(),
            u8::from(row.leds[2]).to_string(),
            format!("{:.3}", row.scope_current.as_milli_amps()),
            format!("{:.3}", row.fitted_current.as_milli_amps()),
            format!("{:.1}", row.time.as_secs_f64()),
        ]);
    }
    println!("{}", obs.render());

    let mut pi = TextTable::new(vec!["Component", "I (mA)"]).with_title("Regression result (Π)");
    pi.row(vec![
        "LED0 (red)".to_string(),
        format!("{:.3}", cal.led_currents[0].as_milli_amps()),
    ]);
    pi.row(vec![
        "LED1 (green)".to_string(),
        format!("{:.3}", cal.led_currents[1].as_milli_amps()),
    ]);
    pi.row(vec![
        "LED2 (blue)".to_string(),
        format!("{:.3}", cal.led_currents[2].as_milli_amps()),
    ]);
    pi.row(vec![
        "Const.".to_string(),
        format!("{:.3}", cal.constant_current.as_milli_amps()),
    ]);
    println!("{}", pi.render());

    println!(
        "Relative error ||Y - XPi|| / ||Y||: {} (paper: 0.83 %)",
        pct(cal.relative_error)
    );
    if let Some(fit) = cal.current_vs_frequency {
        println!(
            "I_avg vs switching frequency: I = {:.3}*f {:+.3}, R^2 = {:.5} (paper: 2.77, -0.05, 0.99995)",
            fit.slope, fit.intercept, fit.r_squared
        );
    }
    println!(
        "Implied energy per iCount pulse: {:.2} uJ (paper: 8.33 uJ)",
        cal.energy_per_pulse.as_micro_joules()
    );
}
