//! Figure 12: cross-node activity tracking in Bounce — node 1's devices
//! spend time working under node 4's activity and vice versa.

use analysis::TextTable;
use hw_model::SimDuration;
use quanto_apps::{device_timelines, run_bounce};
use quanto_core::NodeId;

fn main() {
    let duration = quanto_bench::duration_from_args(4);
    quanto_bench::header(
        "Figure 12 — activity tracking across nodes (Bounce)",
        "Section 4.2.2",
    );
    let run = run_bounce(duration);

    for id in [NodeId(1), NodeId(4)] {
        let out = run.output(id);
        let ctx = run.context(id);
        println!("\n--- Node {id} ---");
        for (device, segments) in device_timelines(&out.log, ctx, out.final_stamp, false) {
            if segments.is_empty() {
                continue;
            }
            let mut t =
                TextTable::new(vec!["start (ms)", "end (ms)", "activity"]).with_title(device);
            for (start, end, name) in segments.iter().take(12) {
                t.row(vec![
                    format!("{:.3}", start.as_millis_f64()),
                    format!("{:.3}", end.as_millis_f64()),
                    name.clone(),
                ]);
            }
            println!("{}", t.render());
        }
        // Summary: time the CPU spent working for the *other* node's
        // activity — the headline claim of the Bounce example.
        let segs = analysis::activity_segments(&out.log, ctx.cpu_dev, true, Some(out.final_stamp));
        let remote: SimDuration = segs
            .iter()
            .filter(|s| s.label.origin != id && !s.label.is_idle())
            .map(|s| s.duration())
            .sum();
        let local: SimDuration = segs
            .iter()
            .filter(|s| s.label.origin == id && !s.label.is_idle())
            .map(|s| s.duration())
            .sum();
        println!(
            "Node {id}: CPU time under remote activities {:.3} ms, under local activities {:.3} ms",
            remote.as_millis_f64(),
            local.as_millis_f64()
        );
        println!(
            "Node {id}: packets sent {}, received {}",
            out.radio_stats.packets_sent, out.radio_stats.packets_received
        );
    }
}
