//! Figure 10: oscilloscope current traces for two steady states of Blink
//! (only the green LED on, and all three LEDs on), with their means.

use analysis::TextTable;
use energy_meter::Oscilloscope;
use hw_model::catalog::led_state;
use hw_model::{SimDuration, SimTime};
use quanto_apps::run_blink;

fn main() {
    let duration = quanto_bench::duration_from_args(16);
    quanto_bench::header(
        "Figure 10 — current traces for two Blink states",
        "Section 4.1",
    );
    let run = run_blink(duration);
    let ctx = &run.context;
    let intervals =
        analysis::power_intervals(&run.output.log, &ctx.catalog, Some(run.output.final_stamp));

    let state_of = |iv: &analysis::PowerInterval| {
        (
            iv.states[ctx.sinks.led0.as_usize()] == led_state::ON,
            iv.states[ctx.sinks.led1.as_usize()] == led_state::ON,
            iv.states[ctx.sinks.led2.as_usize()] == led_state::ON,
        )
    };
    let scope = Oscilloscope::new(
        SimDuration::from_micros(50),
        hw_model::NoiseModel {
            state_bias: 0.0,
            sample_sigma: 0.02,
            seed: 5,
        },
    );

    for (name, want) in [
        ("LED1 (green) on", (false, true, false)),
        ("All LEDs on", (true, true, true)),
    ] {
        let Some(iv) = intervals
            .iter()
            .find(|iv| state_of(iv) == want && iv.duration().as_millis_f64() > 2.0)
        else {
            println!("state {name}: not visited in this run");
            continue;
        };
        let window_end = SimTime::from_micros(iv.start.as_micros() + 1_500);
        let samples = scope.capture(&run.output.trace, iv.start, window_end.min(iv.end));
        let mean = Oscilloscope::mean_of_samples(&samples);
        println!("\n--- {name}: 1.5 ms window starting at {} ---", iv.start);
        let mut t = TextTable::new(vec!["t (ms)", "I (mA)"]);
        for s in samples.iter().step_by(5) {
            t.row(vec![
                format!(
                    "{:.3}",
                    (s.time.as_micros() - iv.start.as_micros()) as f64 / 1000.0
                ),
                format!("{:.3}", s.current.as_milli_amps()),
            ]);
        }
        println!("{}", t.render());
        println!(
            "Mean current: {:.2} mA (paper: 3.05 mA green-only, 6.30 mA all-on)",
            mean.as_milli_amps()
        );
    }
}
