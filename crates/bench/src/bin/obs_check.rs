//! CI gate over a `fleet_sweep --obs-json` profile: proves the obs layer's
//! accounting reconciles, not just that the file exists.
//!
//! Checks, per the acceptance bar in the obs work:
//!
//! * the profile is well-formed (`version` 1, non-empty `workers`);
//! * for every worker that ran long enough to measure (≥ 5 ms), busy +
//!   stall + merge + send time explains its wall-clock to within 5% (the
//!   remainder is queue bookkeeping, which must stay small);
//! * per-phase span totals (`phase_us`) cover at least 95% of busy time —
//!   build/run/analyze spans must tile the scenario spans they nest in.
//!
//! No JSON dependency exists in this workspace, so a ~100-line
//! recursive-descent parser rides along; the input is machine-written by
//! [`quanto_obs::Profile::to_json`], not arbitrary JSON.
//!
//! Usage: `obs_check PROFILE.json` — exits nonzero with a diagnostic on the
//! first violated invariant.

use std::process::ExitCode;

// ---------------------------------------------------------------- JSON

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }
}

// ---------------------------------------------------------------- checks

/// Workers shorter than this are dominated by span-timestamp granularity
/// and queue startup; reconciliation ratios are meaningless on them.
const MIN_MEASURABLE_US: f64 = 5_000.0;

fn check_profile(profile: &Json) -> Result<String, String> {
    let version = profile
        .get("version")
        .and_then(Json::num)
        .ok_or("profile has no numeric \"version\"")?;
    if version != 1.0 {
        return Err(format!("unsupported profile version {version}"));
    }
    let workers = profile
        .get("workers")
        .and_then(Json::arr)
        .ok_or("profile has no \"workers\" array")?;
    if workers.is_empty() {
        return Err("profile recorded no workers — was obs actually enabled?".into());
    }
    for key in ["phases", "scenarios", "trace_events"] {
        if profile.get(key).and_then(Json::arr).is_none() {
            return Err(format!("profile has no \"{key}\" array"));
        }
    }

    let mut measured = 0usize;
    for w in workers {
        let label = w.get("label").and_then(Json::str).unwrap_or("?");
        let field = |k: &str| {
            w.get(k)
                .and_then(Json::num)
                .ok_or_else(|| format!("worker {label}: missing numeric \"{k}\""))
        };
        let elapsed = field("elapsed_us")?;
        let busy = field("busy_us")?;
        let stall = field("stall_us")?;
        let merge = field("merge_us")?;
        let send = field("send_us")?;
        let phase = field("phase_us")?;
        if elapsed < MIN_MEASURABLE_US {
            continue;
        }
        measured += 1;
        let accounted = (busy + stall + merge + send) / elapsed;
        if !(0.95..=1.05).contains(&accounted) {
            return Err(format!(
                "worker {label}: busy {busy:.0} + stall {stall:.0} + merge {merge:.0} + \
                 send {send:.0} µs explains {:.1}% of {elapsed:.0} µs wall-clock \
                 (need 95–105%)",
                accounted * 100.0
            ));
        }
        if busy > 0.0 && phase < 0.95 * busy {
            return Err(format!(
                "worker {label}: phase spans total {phase:.0} µs but busy time is \
                 {busy:.0} µs — build/run/analyze must tile ≥ 95% of scenario time"
            ));
        }
    }
    Ok(format!(
        "obs profile ok: {} workers ({measured} long enough to reconcile), \
         accounted time within 5% of wall-clock",
        workers.len()
    ))
}

fn main() -> ExitCode {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: obs_check PROFILE.json");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match Parser::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_check: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_profile(&profile) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("obs_check: FAIL — {why}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(label: &str, elapsed: u64, busy: u64, stall: u64, merge: u64, phase: u64) -> String {
        format!(
            "{{\"label\":\"{label}\",\"elapsed_us\":{elapsed},\"busy_us\":{busy},\
             \"stall_us\":{stall},\"merge_us\":{merge},\"send_us\":0,\
             \"phase_us\":{phase},\"scenarios\":3}}"
        )
    }

    fn profile_with(workers: &[String]) -> String {
        format!(
            "{{\"version\":1,\"phases\":[],\"workers\":[{}],\"scenarios\":[],\
             \"counters\":{{}},\"gauges\":{{}},\"histograms\":{{}},\"trace_events\":[]}}",
            workers.join(",")
        )
    }

    #[test]
    fn parser_round_trips_the_profile_shape() {
        let text = profile_with(&[worker("worker-0", 10_000, 9_800, 100, 50, 9_700)]);
        let v = Parser::parse(&text).expect("parses");
        assert_eq!(v.get("version").and_then(Json::num), Some(1.0));
        let w = &v.get("workers").and_then(Json::arr).unwrap()[0];
        assert_eq!(w.get("label").and_then(Json::str), Some("worker-0"));
        assert_eq!(w.get("busy_us").and_then(Json::num), Some(9_800.0));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Parser::parse("{\"a\":[1,-2.5e1,\"x\\n\\u0041\"],\"b\":null}").unwrap();
        let a = v.get("a").and_then(Json::arr).unwrap();
        assert_eq!(a[1].num(), Some(-25.0));
        assert_eq!(a[2].str(), Some("x\nA"));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert!(Parser::parse("{\"a\":1}trailing").is_err());
        assert!(Parser::parse("{\"a\":}").is_err());
    }

    #[test]
    fn reconciled_profile_passes() {
        let text = profile_with(&[
            worker("worker-0", 100_000, 94_000, 2_000, 2_000, 93_500),
            worker("worker-1", 100_000, 80_000, 15_000, 3_000, 79_000),
            // Too short to measure — ignored even though unreconciled.
            worker("worker-2", 800, 10, 0, 0, 0),
        ]);
        let v = Parser::parse(&text).unwrap();
        assert!(check_profile(&v).is_ok());
    }

    #[test]
    fn unaccounted_wall_clock_fails() {
        let text = profile_with(&[worker("worker-0", 100_000, 50_000, 10_000, 5_000, 49_000)]);
        let v = Parser::parse(&text).unwrap();
        let err = check_profile(&v).unwrap_err();
        assert!(err.contains("worker-0"), "{err}");
    }

    #[test]
    fn missing_phase_coverage_fails() {
        let text = profile_with(&[worker("worker-0", 100_000, 97_000, 1_000, 1_000, 40_000)]);
        let v = Parser::parse(&text).unwrap();
        let err = check_profile(&v).unwrap_err();
        assert!(err.contains("tile"), "{err}");
    }

    #[test]
    fn empty_workers_and_bad_version_fail() {
        let v = Parser::parse(&profile_with(&[])).unwrap();
        assert!(check_profile(&v).unwrap_err().contains("no workers"));
        let text = profile_with(&[worker("w", 10_000, 9_900, 0, 0, 9_900)])
            .replace("\"version\":1", "\"version\":2");
        let v = Parser::parse(&text).unwrap();
        assert!(check_profile(&v).unwrap_err().contains("version"));
    }
}
