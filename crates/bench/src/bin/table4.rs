//! Table 4 (and the logging-overhead numbers of Section 4.4): the cost of
//! Quanto's own logging.

use analysis::{pct, TextTable};
use quanto_apps::blink_profile;
use quanto_core::{CostModel, RamLogger, ENTRY_SIZE_BYTES};

fn main() {
    let duration = quanto_bench::duration_from_args(48);
    quanto_bench::header("Table 4 — costs of logging", "Section 4.4");

    let cost = CostModel::paper();
    let mut t = TextTable::new(vec!["Quantity", "Value"]).with_title("Logging cost model");
    t.row(vec![
        "Buffer size".to_string(),
        format!("{} samples", RamLogger::DEFAULT_CAPACITY),
    ]);
    t.row(vec![
        "Sample size".to_string(),
        format!("{ENTRY_SIZE_BYTES} bytes"),
    ]);
    t.row(vec![
        "Cost of logging".to_string(),
        format!("{} cycles @ 1 MHz", cost.cycles_per_sample()),
    ]);
    t.row(vec![
        "  Call overhead".to_string(),
        format!("{} cycles", cost.call_overhead_cycles),
    ]);
    t.row(vec![
        "  Read timer".to_string(),
        format!("{} cycles", cost.read_timer_cycles),
    ]);
    t.row(vec![
        "  Read iCount".to_string(),
        format!("{} cycles", cost.read_icount_cycles),
    ]);
    t.row(vec![
        "  Others".to_string(),
        format!("{} cycles", cost.other_cycles),
    ]);
    println!("{}", t.render());

    println!(
        "Measured on the {}-second Blink run:",
        duration.as_secs_f64()
    );
    let profile = blink_profile(duration);
    let mut m = TextTable::new(vec!["Quantity", "Measured", "Paper (48 s run)"]);
    m.row(vec![
        "Log entries".to_string(),
        profile.log_entries.to_string(),
        "597".to_string(),
    ]);
    m.row(vec![
        "Logging share of active CPU time".to_string(),
        pct(profile.logging_active_fraction),
        "71.05 %".to_string(),
    ]);
    m.row(vec![
        "Logging share of total CPU time".to_string(),
        pct(profile.logging_cpu_fraction),
        "0.12 %".to_string(),
    ]);
    m.row(vec![
        "Energy spent logging".to_string(),
        format!("{:.2} mJ", profile.logging_energy.as_milli_joules()),
        "0.41 mJ".to_string(),
    ]);
    m.row(vec![
        "RAM per sample".to_string(),
        format!("{ENTRY_SIZE_BYTES} bytes"),
        "12 bytes".to_string(),
    ]);
    println!("{}", m.render());
}
