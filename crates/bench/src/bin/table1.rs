//! Table 1: the HydroWatch platform's energy sinks, power states and nominal
//! current draws at 3 V.

use analysis::{si, TextTable};
use hw_model::catalog::hydrowatch;

fn main() {
    quanto_bench::header(
        "Table 1 — platform energy sinks and power states",
        "Section 2.3",
    );
    let (catalog, _ids) = hydrowatch();
    let mut table = TextTable::new(vec![
        "Energy sink",
        "Class",
        "Power state",
        "Nominal current",
    ])
    .with_title("Energy sinks and nominal draws (3 V, 1 MHz)");
    for (_, sink) in catalog.sinks() {
        for state in &sink.states {
            table.row(vec![
                sink.name.clone(),
                sink.class.to_string(),
                state.name.clone(),
                si(state.current.as_micro_amps() * 1e-6, "A"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "{} sinks, {} power states, {} regression columns",
        catalog.sink_count(),
        catalog.total_state_count(),
        catalog.column_count()
    );
}
