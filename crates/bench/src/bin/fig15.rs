//! Figure 15: the surprising 16 Hz TimerA1 interrupt — the DCO calibration
//! that runs whether or not anything needs it.

use analysis::TextTable;
use hw_model::SimDuration;
use os_sim::{NodeConfig, Simulator};
use quanto_apps::{ExperimentContext, TimerProbeApp};
use quanto_core::NodeId;

fn main() {
    let duration = quanto_bench::duration_from_args(4);
    quanto_bench::header(
        "Figure 15 — the always-on DCO calibration interrupt",
        "Section 4.3",
    );

    let config = NodeConfig::new(NodeId(32));
    let mut sim = Simulator::new(config, Box::new(TimerProbeApp::default()));
    let out = sim.run_for(duration);
    let ctx = ExperimentContext::from_kernel(sim.node().kernel());

    let segs = analysis::activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
    let a1: Vec<_> = segs
        .iter()
        .filter(|s| ctx.label_name(s.label).ends_with(":int_TIMERA1"))
        .collect();

    println!("CPU activity timeline over a 1-second window:");
    let mut t = TextTable::new(vec!["start (ms)", "end (ms)", "activity"]);
    for s in segs.iter().filter(|s| {
        s.start.as_secs_f64() >= 1.0 && s.start.as_secs_f64() < 2.0 && !s.label.is_idle()
    }) {
        t.row(vec![
            format!("{:.3}", s.start.as_millis_f64()),
            format!("{:.3}", s.end.as_millis_f64()),
            ctx.label_name(s.label),
        ]);
    }
    println!("{}", t.render());

    let rate = a1.len() as f64 / duration.as_secs_f64();
    println!(
        "int_TIMERA1 proxy segments: {} over {:.0} s -> {:.1} Hz (paper: 16 Hz)",
        a1.len(),
        duration.as_secs_f64(),
        rate
    );

    // With the calibration disabled the interrupt disappears.
    let quiet = NodeConfig {
        dco_calibration: false,
        ..NodeConfig::new(NodeId(32))
    };
    let mut sim2 = Simulator::new(quiet, Box::new(TimerProbeApp::default()));
    let out2 = sim2.run_for(duration);
    let ctx2 = ExperimentContext::from_kernel(sim2.node().kernel());
    let segs2 = analysis::activity_segments(&out2.log, ctx2.cpu_dev, false, Some(out2.final_stamp));
    let a1_quiet = segs2
        .iter()
        .filter(|s| ctx2.label_name(s.label).ends_with(":int_TIMERA1"))
        .count();
    println!(
        "With calibration disabled: {a1_quiet} TimerA1 segments (the fix TinyOS developers wanted)"
    );
    let _ = SimDuration::from_secs(1);
}
