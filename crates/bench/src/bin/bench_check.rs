//! Compares a bench run against the checked-in `BENCH_BASELINE.json`.
//!
//! ```text
//! bench_check <BENCH_BASELINE.json> <bench-output.txt> [--update]
//! ```
//!
//! The bench output file is whatever `cargo bench` (and, appended,
//! `fleet_sweep --smoke`) printed; only `bench <id> median <t> ...` summary
//! lines are read.  Comparisons are normalized by the fixed-work
//! `calibration/spin` bench so a slower or faster host does not read as a
//! code regression; anything more than the baseline's `_tolerance` (default
//! 25 %) over its normalized baseline fails the check.
//!
//! `--update` rewrites the baseline from the measured medians instead of
//! comparing.

use quanto_bench::baseline::{
    compare, fmt_ns, parse_bench_lines, parse_flat_json, render_flat_json, TOLERANCE_KEY,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, bench_path] = paths.as_slice() else {
        eprintln!("usage: bench_check <BENCH_BASELINE.json> <bench-output.txt> [--update]");
        return ExitCode::FAILURE;
    };

    let bench_text = match std::fs::read_to_string(bench_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let measured = parse_bench_lines(&bench_text);
    if measured.is_empty() {
        eprintln!("bench_check: no bench summary lines found in {bench_path}");
        return ExitCode::FAILURE;
    }

    if update {
        let tolerance = std::fs::read_to_string(baseline_path)
            .ok()
            .and_then(|t| parse_flat_json(&t).ok())
            .and_then(|b| b.iter().find(|(k, _)| k == TOLERANCE_KEY).map(|(_, v)| *v))
            .unwrap_or(quanto_bench::baseline::DEFAULT_TOLERANCE);
        let mut entries = vec![(TOLERANCE_KEY.to_string(), tolerance)];
        entries.extend(measured);
        if let Err(e) = std::fs::write(baseline_path, render_flat_json(&entries)) {
            eprintln!("bench_check: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "bench_check: wrote {} entries to {baseline_path}",
            entries.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match parse_flat_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let check = compare(&baseline, &measured);
    println!(
        "bench_check: host speed scale {:.3}, tolerance {:.0} %",
        check.scale,
        check.tolerance * 100.0
    );
    for c in &check.comparisons {
        let verdict = if c.regressed { "REGRESSED" } else { "ok" };
        println!(
            "  {verdict:>9}  {id:<48} baseline {base:>12}  measured {now:>12}  ratio {ratio:.2}",
            id = c.id,
            base = fmt_ns(c.baseline_ns),
            now = fmt_ns(c.measured_ns),
            ratio = c.ratio,
        );
    }
    for id in &check.missing {
        println!("   MISSING  {id} (in baseline, not measured — rerun or `--update`)");
    }
    if check.failed() {
        eprintln!("bench_check: FAILED (regression or missing bench)");
        ExitCode::FAILURE
    } else {
        println!("bench_check: all benches within tolerance");
        ExitCode::SUCCESS
    }
}
