//! Bench-baseline bookkeeping: parse `cargo bench` output, compare it
//! against the checked-in `BENCH_BASELINE.json`, and regenerate the
//! baseline.
//!
//! The offline criterion shim prints one summary line per benchmark
//! (`bench <id> median <t> mean <t> (<n> samples)`); `fleet_sweep --smoke`
//! emits its wall-clock measurements in the same shape.  The baseline file
//! is a flat JSON object mapping bench ids to median nanoseconds per
//! iteration, plus underscore-prefixed metadata keys.
//!
//! Absolute nanoseconds are meaningless across hosts, so the comparison is
//! normalized: the fixed-work [`CALIBRATION_ID`] bench measures how fast the
//! current host is relative to the host that recorded the baseline, and
//! every other bench is compared against `baseline × that scale`.

/// Id of the fixed-workload calibration bench used to normalize host speed.
pub const CALIBRATION_ID: &str = "calibration/spin";

/// Baseline key holding the allowed relative regression (e.g. `0.25`).
pub const TOLERANCE_KEY: &str = "_tolerance";

/// Default allowed relative regression when the baseline has no
/// [`TOLERANCE_KEY`].
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Parses a duration token pair like (`"1.234"`, `"ms"`) into nanoseconds.
fn duration_ns(value: &str, unit: &str) -> Option<f64> {
    let v: f64 = value.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(v * scale)
}

/// Formats nanoseconds the way the criterion shim does.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders one measurement as a shim-compatible bench summary line (used by
/// `fleet_sweep --smoke` so its wall-clock numbers flow through the same
/// baseline comparison as `cargo bench` output).
pub fn bench_line(id: &str, median_ns: f64) -> String {
    format!(
        "bench {id:<48} median {:>12}  mean {:>12}  (1 samples)",
        fmt_ns(median_ns),
        fmt_ns(median_ns)
    )
}

/// Extracts `(id, median ns)` from every bench summary line in `text`;
/// non-bench lines are ignored.
pub fn parse_bench_lines(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.first() != Some(&"bench") || tokens.len() < 5 {
            continue;
        }
        let Some(pos) = tokens.iter().position(|t| *t == "median") else {
            continue;
        };
        if pos + 2 >= tokens.len() || pos < 2 {
            continue;
        }
        if let Some(ns) = duration_ns(tokens[pos + 1], tokens[pos + 2]) {
            out.push((tokens[1].to_string(), ns));
        }
    }
    out
}

/// Parses a flat `{"key": number, ...}` JSON object (the only shape the
/// baseline uses; no nesting, no strings, no escapes in keys).
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("baseline is not a JSON object")?;
    let mut out = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed entry {pair:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key in {pair:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("malformed number in {pair:?}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

/// Renders entries as the flat JSON object [`parse_flat_json`] reads.
pub fn render_flat_json(entries: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        // f64 Display is shortest-round-trip, so no precision is lost.
        out.push_str(&format!("  \"{key}\": {value}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// One baseline-versus-measured comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The bench id.
    pub id: String,
    /// Baseline median, in ns (as recorded).
    pub baseline_ns: f64,
    /// Measured median, in ns.
    pub measured_ns: f64,
    /// `measured / (baseline × host scale)` — 1.0 means exactly on
    /// baseline, above 1 is slower.
    pub ratio: f64,
    /// Whether the ratio exceeds the allowed tolerance.
    pub regressed: bool,
}

/// The outcome of comparing a bench run against the baseline.
#[derive(Debug)]
pub struct BaselineCheck {
    /// Per-bench comparisons, baseline order.
    pub comparisons: Vec<Comparison>,
    /// Baseline ids with no measurement in the bench output.
    pub missing: Vec<String>,
    /// The tolerance applied.
    pub tolerance: f64,
    /// The host-speed scale derived from [`CALIBRATION_ID`] (1.0 when
    /// either side lacks it).
    pub scale: f64,
}

impl BaselineCheck {
    /// Whether any bench regressed or any baseline entry went unmeasured.
    pub fn failed(&self) -> bool {
        !self.missing.is_empty() || self.comparisons.iter().any(|c| c.regressed)
    }
}

fn lookup(entries: &[(String, f64)], id: &str) -> Option<f64> {
    entries.iter().find(|(k, _)| k == id).map(|(_, v)| *v)
}

/// Compares measured bench medians against the baseline.
pub fn compare(baseline: &[(String, f64)], measured: &[(String, f64)]) -> BaselineCheck {
    let tolerance = lookup(baseline, TOLERANCE_KEY).unwrap_or(DEFAULT_TOLERANCE);
    let scale = match (
        lookup(baseline, CALIBRATION_ID),
        lookup(measured, CALIBRATION_ID),
    ) {
        (Some(base), Some(now)) if base > 0.0 && now > 0.0 => now / base,
        _ => 1.0,
    };
    let mut comparisons = Vec::new();
    let mut missing = Vec::new();
    for (id, baseline_ns) in baseline {
        if id.starts_with('_') || id == CALIBRATION_ID {
            continue;
        }
        match lookup(measured, id) {
            None => missing.push(id.clone()),
            Some(measured_ns) => {
                let ratio = measured_ns / (baseline_ns * scale).max(f64::EPSILON);
                comparisons.push(Comparison {
                    id: id.clone(),
                    baseline_ns: *baseline_ns,
                    measured_ns,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
        }
    }
    BaselineCheck {
        comparisons,
        missing,
        tolerance,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_lines_round_trip_through_the_parser() {
        let text = format!(
            "noise\n{}\n{}\nbench run complete\n",
            bench_line("logger/record_Flush", 1234.0),
            bench_line("fleet/sweep_smoke_t1", 2.5e9),
        );
        let parsed = parse_bench_lines(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "logger/record_Flush");
        assert!((parsed[0].1 - 1234.0).abs() / 1234.0 < 1e-3);
        assert_eq!(parsed[1].0, "fleet/sweep_smoke_t1");
        assert!((parsed[1].1 - 2.5e9).abs() / 2.5e9 < 1e-3);
    }

    #[test]
    fn shim_output_shape_is_parsed() {
        let text = "bench workloads/blink_8s                               median     12.345 ms  mean     13.000 ms  (10 samples)";
        let parsed = parse_bench_lines(text);
        assert_eq!(parsed, vec![("workloads/blink_8s".to_string(), 12.345e6)]);
    }

    #[test]
    fn flat_json_round_trips() {
        let entries = vec![
            ("_tolerance".to_string(), 0.25),
            ("a/b".to_string(), 1500.0),
            ("c".to_string(), 2.0e9),
        ];
        let text = render_flat_json(&entries);
        let parsed = parse_flat_json(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "_tolerance");
        assert!((parsed[2].1 - 2.0e9).abs() < 1.0);
        assert!(parse_flat_json("not json").is_err());
    }

    #[test]
    fn comparison_normalizes_by_calibration_and_flags_regressions() {
        let baseline = vec![
            (TOLERANCE_KEY.to_string(), 0.25),
            (CALIBRATION_ID.to_string(), 1000.0),
            ("fast".to_string(), 100.0),
            ("slow".to_string(), 100.0),
            ("gone".to_string(), 100.0),
        ];
        // The host is 2x slower than the baseline host; "fast" scaled up by
        // exactly 2x is on-baseline, "slow" at 3x is a regression.
        let measured = vec![
            (CALIBRATION_ID.to_string(), 2000.0),
            ("fast".to_string(), 200.0),
            ("slow".to_string(), 300.0),
        ];
        let check = compare(&baseline, &measured);
        assert!((check.scale - 2.0).abs() < 1e-9);
        assert_eq!(check.missing, vec!["gone".to_string()]);
        let fast = check.comparisons.iter().find(|c| c.id == "fast").unwrap();
        let slow = check.comparisons.iter().find(|c| c.id == "slow").unwrap();
        assert!(!fast.regressed, "ratio {}", fast.ratio);
        assert!(slow.regressed, "ratio {}", slow.ratio);
        assert!(check.failed());
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = vec![("x".to_string(), 100.0)];
        let measured = vec![("x".to_string(), 120.0)];
        let check = compare(&baseline, &measured);
        assert!(!check.failed(), "20 % is inside the default 25 % tolerance");
        let worse = vec![("x".to_string(), 130.0)];
        assert!(compare(&baseline, &worse).failed());
    }
}
