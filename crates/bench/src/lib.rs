//! Shared helpers for the reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper.
//! They all print fixed-width text tables via `analysis::report` and accept a
//! `--seconds N` argument to shorten or lengthen the underlying simulation.
//! [`baseline`] holds the checked-in-baseline comparison logic behind the
//! `bench_check` binary.

pub mod baseline;

use hw_model::SimDuration;

/// Parses a `--seconds N` argument, falling back to `default_secs`.
pub fn duration_from_args(default_secs: u64) -> SimDuration {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = default_secs;
    for i in 0..args.len() {
        if args[i] == "--seconds" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                secs = v;
            }
        }
    }
    SimDuration::from_secs(secs)
}

/// Prints a section header shared by all harnesses.
pub fn header(what: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("Quanto reproduction — {what}");
    println!("Paper reference: {paper_ref}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_duration_used_without_args() {
        assert_eq!(duration_from_args(48), SimDuration::from_secs(48));
    }
}
