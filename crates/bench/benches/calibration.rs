//! Host-speed calibration for the checked-in bench baseline.
//!
//! `BENCH_BASELINE.json` records absolute medians from one machine; this
//! fixed-integer-workload bench measures how fast the current host is
//! relative to that machine, and `bench_check` scales every other
//! comparison by the ratio so hardware differences do not read as code
//! regressions.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_spin(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    group.bench_function("spin", |b| {
        b.iter(|| {
            // A SplitMix64 stream folded 2^20 times: pure ALU work, no
            // allocation, no memory pressure — a stable host-speed proxy.
            let mut acc = 0u64;
            let mut state = 0x1234_5678u64;
            for _ in 0..(1u32 << 20) {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                acc = acc.wrapping_add(z ^ (z >> 31));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spin);
criterion_main!(benches);
