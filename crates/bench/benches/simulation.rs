//! Criterion bench: end-to-end simulation throughput — how long it takes to
//! run the paper's workloads (Blink, Bounce, LPL) on the host, and the
//! overhead-ablation comparing a Quanto-instrumented node against an
//! uninstrumented one.

use criterion::{criterion_group, criterion_main, Criterion};
use hw_model::SimDuration;
use os_sim::{NodeConfig, Simulator};
use quanto_apps::{run_bounce, run_lpl_experiment, BlinkApp};
use quanto_core::NodeId;

fn bench_blink(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    group.bench_function("blink_8s", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(NodeConfig::new(NodeId(1)), Box::new(BlinkApp::new()));
            sim.run_for(SimDuration::from_secs(8))
        });
    });
    group.bench_function("bounce_2s_two_nodes", |b| {
        b.iter(|| run_bounce(SimDuration::from_secs(2)));
    });
    group.bench_function("lpl_14s_channel17", |b| {
        b.iter(|| run_lpl_experiment(17, SimDuration::from_secs(14), 0.18));
    });
    group.finish();
}

fn bench_quanto_overhead_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("quanto_overhead_ablation");
    group.sample_size(10);
    for (name, enabled) in [("instrumented", true), ("uninstrumented", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = NodeConfig {
                    quanto_enabled: enabled,
                    ..NodeConfig::new(NodeId(1))
                };
                let mut sim = Simulator::new(config, Box::new(BlinkApp::new()));
                sim.run_for(SimDuration::from_secs(8))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blink, bench_quanto_overhead_ablation);
criterion_main!(benches);
