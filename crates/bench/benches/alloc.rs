//! Criterion bench: allocator traffic on the hot paths.
//!
//! `alloc/steady_state_record` measures the warm record → flush-drain →
//! chunked-digest-fold pipeline — the per-entry cost the counting-allocator
//! gate proves is allocation-free, timed here so a regression that sneaks an
//! allocation back in also shows up as a latency cliff.
//!
//! `fleet/workspace_reuse` vs `fleet/workspace_fresh` measure the same
//! streaming scenario execution through a pooled [`SimWorkspace`] and
//! through a cold workspace per run; `scripts/check_bench.sh` pins the
//! reuse path faster than the fresh path.

use criterion::{criterion_group, criterion_main, Criterion};
use hw_model::{SimDuration, SimTime, SinkId};
use quanto_core::{LogEntry, OverflowPolicy, RamLogger, StreamDigest};
use quanto_fleet::{Scenario, ScenarioResult, SimWorkspace};
use std::cell::RefCell;
use std::rc::Rc;

fn bench_steady_state_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc");
    const CAP: usize = 800;
    // One long-lived logger: the buffer and the sink's encode scratch are
    // warm after the first batch, so every sample measures the steady state.
    let digest = Rc::new(RefCell::new((StreamDigest::new(), Vec::<u8>::new())));
    let tap = digest.clone();
    let mut logger = RamLogger::new(CAP, OverflowPolicy::Flush);
    logger.set_sink(Box::new(move |chunk: &[LogEntry]| {
        let mut guard = tap.borrow_mut();
        let (digest, scratch) = &mut *guard;
        digest.fold_chunk(chunk, scratch);
    }));
    for i in 0..2_000u32 {
        logger.record(LogEntry::power_state(
            SimTime::from_micros(i as u64),
            i,
            SinkId(1),
            (i % 2) as u16,
        ));
    }
    group.bench_function("steady_state_record", |b| {
        b.iter(|| {
            for i in 0..1000u32 {
                logger.record(LogEntry::power_state(
                    SimTime::from_micros(i as u64),
                    i,
                    SinkId(1),
                    (i % 2) as u16,
                ));
            }
            logger.flushed()
        });
    });
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    let scenario = || Scenario::bounce(SimDuration::from_millis(500));
    // Pooled: one workspace across every sample — after the first run the
    // engine containers, log buffers and analysis slots all recycle.
    let mut ws = SimWorkspace::new();
    ScenarioResult::execute_streaming_in(0, scenario(), &mut ws);
    group.bench_function("workspace_reuse", |b| {
        b.iter(|| ScenarioResult::execute_streaming_in(0, scenario(), &mut ws));
    });
    // Fresh: a cold workspace per run — every allocation rebuilt.
    group.bench_function("workspace_fresh", |b| {
        b.iter(|| ScenarioResult::execute_streaming(0, scenario()));
    });
    group.finish();
}

criterion_group!(benches, bench_steady_state_record, bench_workspace_reuse);
criterion_main!(benches);
