//! Criterion bench: what turning the `quanto-obs` layer on costs a fleet
//! run.  The same small batch executes with observability off and on;
//! `BENCH_BASELINE.json` pins both, so a hot-path regression in either the
//! disabled fast path (one relaxed load per probe) or the enabled recording
//! path trips `bench_check`.
//!
//! Ordering matters: the obs-off case runs first, in the same process, so
//! it measures the true disabled cost — not a cache still warm from an
//! enabled run.  Each iteration drains whatever it recorded (`reset`), so
//! the sink never grows across samples.

use criterion::{criterion_group, criterion_main, Criterion};
use hw_model::SimDuration;
use quanto_fleet::{FleetRunner, Scenario};

fn small_batch() -> Vec<Scenario> {
    let d = SimDuration::from_millis(500);
    vec![
        Scenario::lpl(17, 0.18, d),
        Scenario::blink(d),
        Scenario::bounce(d),
    ]
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    for (name, on) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                quanto_obs::set_enabled(on);
                let report = FleetRunner::sequential().run(small_batch());
                quanto_obs::set_enabled(false);
                quanto_obs::reset();
                report.digest()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
