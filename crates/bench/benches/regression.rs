//! Criterion bench: the offline regression (Section 2.5), including the
//! weighted-versus-unweighted ablation called out in DESIGN.md.

use analysis::{pool_intervals, regress, regress_intervals, RegressionOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use hw_model::catalog::{blink_catalog, led_state};
use hw_model::{Energy, PowerModel, SimDuration, SimTime, SinkId, StateVector};
use std::sync::Arc;

fn blink_like_intervals(n_cycles: usize) -> (Vec<analysis::PowerInterval>, Arc<hw_model::Catalog>) {
    let (cat, _cpu, leds) = blink_catalog();
    let cat = Arc::new(cat);
    let model = PowerModel::ideal(cat.clone());
    let mut intervals = Vec::new();
    let mut cumulative = 0.0f64;
    let mut prev = 0u64;
    let mut t = SimTime::ZERO;
    let dur = SimDuration::from_millis(250);
    for cycle in 0..n_cycles {
        for mask in 0..8u8 {
            let mut sv = StateVector::baseline(&cat);
            for (i, led) in leds.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sv.set_state(*led, led_state::ON);
                }
            }
            cumulative += model.energy_over(&sv, dur).as_micro_joules();
            let counts = cumulative.floor() as u64;
            intervals.push(analysis::PowerInterval {
                start: t,
                end: t + dur,
                counts: (counts - prev) as u32,
                states: (0..cat.sink_count())
                    .map(|i| sv.state(SinkId(i as u16)))
                    .collect(),
            });
            prev = counts;
            t += dur;
        }
        let _ = cycle;
    }
    (intervals, cat)
}

fn bench_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("regression");
    for n_cycles in [8usize, 64, 256] {
        let (intervals, cat) = blink_like_intervals(n_cycles);
        group.bench_function(
            format!("pool_and_regress_{}_intervals", intervals.len()),
            |b| {
                b.iter(|| {
                    regress_intervals(
                        std::hint::black_box(&intervals),
                        &cat,
                        Energy::from_micro_joules(1.0),
                        RegressionOptions::default(),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_weight_ablation(c: &mut Criterion) {
    let (intervals, cat) = blink_like_intervals(64);
    let obs = pool_intervals(&intervals, Energy::from_micro_joules(1.0));
    let mut group = c.benchmark_group("regression_weights_ablation");
    for (name, weighted) in [("weighted", true), ("unweighted", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                regress(
                    std::hint::black_box(&obs),
                    &cat,
                    RegressionOptions {
                        weighted,
                        include_constant: true,
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regression, bench_weight_ablation);
criterion_main!(benches);
