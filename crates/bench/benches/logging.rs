//! Criterion bench: the synchronous logging path (Table 4's 102-cycle claim,
//! measured here as host-side nanoseconds per recorded sample) and the
//! logging-vs-counting ablation of Section 5.1.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hw_model::catalog::blink_catalog;
use hw_model::{SimTime, SinkId};
use quanto_core::{
    AccountingMode, LogEntry, OverflowPolicy, QuantoRuntime, RamLogger, RuntimeConfig, Stamp,
};

fn bench_ram_logger(c: &mut Criterion) {
    let mut group = c.benchmark_group("logger");
    for policy in [
        OverflowPolicy::Stop,
        OverflowPolicy::Wrap,
        OverflowPolicy::Flush,
    ] {
        group.bench_function(format!("record_{policy:?}"), |b| {
            b.iter_batched(
                || RamLogger::new(800, policy),
                |mut logger| {
                    for i in 0..1000u32 {
                        logger.record(LogEntry::power_state(
                            SimTime::from_micros(i as u64),
                            i,
                            SinkId(1),
                            (i % 2) as u16,
                        ));
                    }
                    logger
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_runtime_sample(c: &mut Criterion) {
    let (catalog, _cpu, leds) = blink_catalog();
    let mut group = c.benchmark_group("runtime");
    for (name, mode) in [
        ("log_mode", AccountingMode::Log),
        ("counters_mode", AccountingMode::Counters),
    ] {
        group.bench_function(format!("power_state_change_{name}"), |b| {
            b.iter_batched(
                || {
                    QuantoRuntime::new(
                        quanto_core::NodeId(1),
                        &catalog,
                        RuntimeConfig {
                            mode,
                            overflow_policy: OverflowPolicy::Wrap,
                            ..RuntimeConfig::default()
                        },
                    )
                },
                |mut rt| {
                    for i in 0..1000u32 {
                        let stamp = Stamp::new(SimTime::from_micros(i as u64 * 10), i);
                        rt.set_power_state(stamp, leds[0], (i % 2) as u16);
                    }
                    rt
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_entry_codec(c: &mut Criterion) {
    let entry = LogEntry::power_state(SimTime::from_micros(123_456), 789, SinkId(3), 1);
    c.bench_function("entry_encode_decode", |b| {
        b.iter(|| {
            let bytes = std::hint::black_box(entry).encode();
            LogEntry::decode(&bytes).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_ram_logger,
    bench_runtime_sample,
    bench_entry_codec
);
criterion_main!(benches);
