//! Criterion bench: radio-medium delivery throughput at fleet scale — the
//! spatial-index fast path against the brute-force all-nodes scan over the
//! same 1024-node path-loss field.  The index is the change that makes
//! 10k-node sweeps tractable; this group is its regression gate.

use criterion::{criterion_group, criterion_main, Criterion};
use hw_model::{SimDuration, SimTime};
use net_sim::{PathLoss, PathLossParams, Position, RadioMedium};
use os_sim::{AmPacket, Emission};
use quanto_core::NodeId;

const SIDE: u32 = 32;
const SPACING_M: f64 = 30.0;

/// A 32×32 = 1024-node grid, 30 m pitch: every node has a handful of
/// audible neighbors while the field is ~1 km across, so the all-nodes scan
/// wastes ~99 % of its `receive` calls on nodes provably below the floor.
fn grid_1k(brute: bool) -> (PathLoss, Vec<NodeId>) {
    let mut m = PathLoss::new(PathLossParams::default());
    if brute {
        m = m.without_spatial_index();
    }
    let mut roster = Vec::with_capacity((SIDE * SIDE) as usize);
    for row in 0..SIDE {
        for col in 0..SIDE {
            let id = NodeId(row * SIDE + col + 1);
            let p = Position::new(col as f64 * SPACING_M, row as f64 * SPACING_M);
            m = m.with_position(id, p);
            roster.push(id);
        }
    }
    (m, roster)
}

fn emission_from(from: NodeId, start_us: u64) -> Emission {
    Emission {
        from,
        channel: 26,
        packet: AmPacket::new(from, NodeId::BROADCAST, 0, vec![]),
        start: SimTime::from_micros(start_us),
        end: SimTime::from_micros(start_us) + SimDuration::from_millis(1),
    }
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("medium");
    group.sample_size(10);
    for (name, brute) in [
        ("path_loss_delivery_1k", false),
        ("path_loss_delivery_1k_brute", true),
    ] {
        group.bench_function(name, |b| {
            let (mut m, roster) = grid_1k(brute);
            let mut tick = 0u64;
            b.iter(|| {
                // Walk the transmitter around the grid so the whole index,
                // not one hot cell, is exercised.
                tick += 1;
                let from = roster[(tick * 97) as usize % roster.len()];
                let e = emission_from(from, tick * 2_000);
                m.deliver(&e, &roster, &[])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delivery);
criterion_main!(benches);
