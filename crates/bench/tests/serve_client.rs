//! End-to-end contract of `fleet_sweep --server`: the real binary, as a
//! client of a real (in-process) `quanto-serve` daemon, must print the
//! byte-identical digest the same grid folds in-process — and its `--json`
//! stream must be line-compatible with the local `--json` output (progress
//! documents, then the summary document).

use quanto_serve::{ServeConfig, Server};
use std::process::Command;

fn fleet_sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fleet_sweep"))
}

const TINY_GRID: &str = "
[grid]
name = served_cli
seconds = 1

[cell.lpl]
app = lpl
interference = 0.18
seeds = 1..2
channels = 17
name = lpl_ch{channel}_seed{seed}

[cell.bounce]
app = bounce
";

fn digest_of(stdout: &str) -> String {
    stdout
        .lines()
        .last()
        .and_then(|line| line.split("\"digest\":\"").nth(1))
        .and_then(|tail| tail.split('"').next())
        .unwrap_or_else(|| panic!("no digest in output:\n{stdout}"))
        .to_string()
}

#[test]
fn served_cli_sweep_matches_the_local_cli_sweep() {
    let dir = std::env::temp_dir().join(format!("serve-client-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let grid_path = dir.join("tiny.grid");
    std::fs::write(&grid_path, TINY_GRID).expect("write grid");

    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            cache_dir: None,
        },
    )
    .expect("bind server")
    .start();
    let addr = handle.addr().to_string();

    let served = fleet_sweep()
        .args(["--server", &addr, "--grid"])
        .arg(&grid_path)
        .arg("--json")
        .output()
        .expect("spawn served client");
    assert!(
        served.status.success(),
        "served sweep failed:\n{}",
        String::from_utf8_lossy(&served.stderr)
    );
    let served_out = String::from_utf8(served.stdout).expect("utf8");

    let local = fleet_sweep()
        .args(["--no-cache", "--grid"])
        .arg(&grid_path)
        .arg("--json")
        .output()
        .expect("spawn local sweep");
    assert!(local.status.success());
    let local_out = String::from_utf8(local.stdout).expect("utf8");

    assert_eq!(
        digest_of(&served_out),
        digest_of(&local_out),
        "served and local digests must be byte-identical"
    );

    // Line-compatible stream: 3 progress documents then the summary, each
    // carrying the same per-scenario result shape.
    let served_lines: Vec<&str> = served_out.lines().collect();
    let local_lines: Vec<&str> = local_out.lines().collect();
    assert_eq!(served_lines.len(), 4, "{served_out}");
    assert_eq!(served_lines.len(), local_lines.len());
    for (k, line) in served_lines[..3].iter().enumerate() {
        assert!(
            line.contains(&format!("\"completed\":{}", k + 1)) && line.contains("\"result\":"),
            "progress line {k} malformed: {line}"
        );
    }

    // A daemon-side grid rejection surfaces as a clean client error.
    let bad = fleet_sweep()
        .args(["--server", &addr, "--grid", "/definitely/not/a/grid"])
        .output()
        .expect("spawn bad client");
    assert!(!bad.status.success());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
