//! End-to-end CLI contracts of `fleet_sweep`'s shard and cache flags,
//! exercising the real binary (`CARGO_BIN_EXE_fleet_sweep`) with real
//! spawned shard processes — the one layer the in-process tests in
//! `quanto-fleet` cannot cover.

use std::path::PathBuf;
use std::process::Command;

fn fleet_sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fleet_sweep"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-sweep-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny grid: fast to simulate, several cells, one non-ideal medium.
const TINY_GRID: &str = "
[grid]
name = cli_tiny
seconds = 1

[cell.lpl]
app = lpl
interference = 0.18
seeds = 1..2
channels = 17
name = lpl_ch{channel}_seed{seed}

[cell.bounce]
app = bounce
";

fn write_grid(dir: &PathBuf) -> PathBuf {
    std::fs::create_dir_all(dir).expect("mkdir");
    let path = dir.join("tiny.grid");
    std::fs::write(&path, TINY_GRID).expect("write grid");
    path
}

fn digest_of(stdout: &str) -> String {
    stdout
        .lines()
        .last()
        .and_then(|line| line.split("\"digest\":\"").nth(1))
        .and_then(|tail| tail.split('"').next())
        .unwrap_or_else(|| panic!("no digest in output:\n{stdout}"))
        .to_string()
}

/// Pulls hits/misses/writes out of the summary document's cache object —
/// those keys appear nowhere else in the JSON.
fn cache_counts(stdout: &str) -> (u64, u64, u64) {
    let doc = stdout.lines().last().expect("summary line");
    let first = |key: &str| -> u64 {
        doc.split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|tail| tail.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|digits| digits.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in summary:\n{doc}"))
    };
    (first("hits"), first("misses"), first("writes"))
}

/// The flagship CLI contract: a cold 2-shard cached run and a warm re-run
/// produce byte-identical digests, the warm run is all hits and zero
/// simulations, and `--shards 1 --no-cache` agrees with both.
#[test]
fn sharded_and_cached_runs_fold_the_same_digest() {
    let dir = tmp_dir("e2e");
    let grid = write_grid(&dir);
    let cache = dir.join("cache");
    let run = |extra: &[&str]| {
        let out = fleet_sweep()
            .args(["--grid", grid.to_str().unwrap(), "--json"])
            .args(extra)
            .output()
            .expect("fleet_sweep runs");
        assert!(
            out.status.success(),
            "fleet_sweep {extra:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };

    let plain = run(&["--no-cache"]);
    let cold = run(&[
        "--shards",
        "2",
        "--threads",
        "2",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    let warm = run(&[
        "--shards",
        "2",
        "--threads",
        "2",
        "--cache",
        cache.to_str().unwrap(),
    ]);

    let digest = digest_of(&plain);
    assert_eq!(digest_of(&cold), digest, "cold sharded digest drifted");
    assert_eq!(digest_of(&warm), digest, "warm cached digest drifted");

    assert!(plain.lines().last().unwrap().contains("\"cache\":null"));
    let (hits, misses, writes) = cache_counts(&cold);
    assert_eq!((hits, misses), (0, 3), "cold run misses every cell");
    assert_eq!(writes, 3, "cold run populates the cache");
    let (hits, misses, writes) = cache_counts(&warm);
    assert_eq!((hits, misses, writes), (3, 0, 0), "warm run is all hits");

    // Warm progress events carry cache_hit:true and no shard (nothing ran).
    let first_event = warm.lines().next().expect("progress line");
    assert!(first_event.contains("\"cache_hit\":true"), "{first_event}");
    assert!(first_event.contains("\"shard\":null"), "{first_event}");
    // Cold progress events name their executing shard.
    assert!(
        cold.lines()
            .take(3)
            .all(|line| line.contains("\"cache_hit\":false") && !line.contains("\"shard\":null")),
        "cold events must name a shard:\n{cold}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The strict-flags contract at the binary boundary: misuse exits with the
/// usage error, before any simulation runs.
#[test]
fn flag_misuse_is_a_prompt_usage_error() {
    for bad in [
        &["--shards", "0"][..],
        &["--shards", "two"][..],
        &["--cache"][..],
        &["--cache", "x", "--no-cache"][..],
        &["--smoke", "--shards", "2"][..],
        &["--stress-nodes", "254", "--cache", "x"][..],
        &["--shard", "127.0.0.1:1", "--json"][..],
        &["--cachet", "x"][..],
    ] {
        let out = fleet_sweep().args(bad).output().expect("runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bad:?} must exit 2 with usage, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{bad:?}: {stderr}");
    }
}

/// A shard pointed at a dead coordinator fails cleanly — no simulation, no
/// hang, a real error message.
#[test]
fn orphan_shard_fails_cleanly() {
    // Bind-then-drop: the port is valid but nobody is listening.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let out = fleet_sweep()
        .args(["--shard", &addr])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "orphan shard must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shard worker failed"), "{stderr}");
}
