//! Quanto core: the paper's primary contribution as a reusable library.
//!
//! Quanto (Fonseca, Dutta, Levis, Stoica — OSDI 2008) is a network-wide time
//! and energy profiler for embedded network devices.  It rests on four
//! mechanisms, all of which live in this crate:
//!
//! 1. **Power-state tracking** ([`power_state`]): device drivers expose the
//!    power state of every energy sink through a tiny idempotent interface.
//! 2. **Activity tracking** ([`activity`], [`device`]): programmer-defined
//!    *activities* are the resource principal; labels are propagated across
//!    devices ("painting" them) and across nodes (inside packets), with proxy
//!    activities standing in until an interrupt's real activity is known.
//! 3. **Cheap logging** ([`log`], [`logger`], [`cost`], [`sink`]): every
//!    change is recorded as a 12-byte entry containing the local time and the
//!    iCount energy reading, at a cost of ~102 CPU cycles per sample; the
//!    asynchronous half streams drained chunks through the [`sink::LogSink`]
//!    seam so host-side consumers need not buffer whole logs.
//! 4. **The runtime** ([`runtime`]): the per-node component that ties the
//!    three together and that the instrumented OS calls into.
//!
//! The offline analysis that turns these logs into per-component and
//! per-activity energy breakdowns lives in the `analysis` crate; the
//! simulated platform and OS live in `hw-model`, `energy-meter`, `os-sim`
//! and `net-sim`.

pub mod activity;
pub mod cost;
pub mod device;
pub mod log;
pub mod logger;
pub mod power_state;
pub mod runtime;
pub mod sink;

pub use activity::{ActivityId, ActivityKind, ActivityLabel, ActivityRegistry, NodeId};
pub use cost::{CostModel, CostStats};
pub use device::{DeviceId, DeviceKind, DeviceTable, MultiActivityError};
pub use log::{
    EntryKind, LogEncoding, LogEntry, LogVersion, ENTRY_SIZE_BYTES, ENTRY_SIZE_BYTES_V2, V1, V2,
};
pub use logger::{OverflowPolicy, RamLogger};
pub use power_state::{PowerStateTable, PowerStateTrack, PowerStateValue};
pub use runtime::{
    AccountingMode, OnlineCounters, QuantoRuntime, RuntimeConfig, Stamp, TrackListener,
};
pub use sink::{CountingSink, LogSink, StreamDigest, VecSink};
