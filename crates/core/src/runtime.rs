//! The per-node Quanto runtime.
//!
//! [`QuantoRuntime`] is the component the instrumented OS talks to.  It owns
//! the power-state table, the activity state of every tracked device, the RAM
//! logger and the cost accounting, and it implements the paper's interfaces:
//!
//! * `PowerState.set` / `setBits`  → [`QuantoRuntime::set_power_state`] and
//!   [`QuantoRuntime::set_power_state_bits`],
//! * `SingleActivityDevice.get/set/bind` → [`QuantoRuntime::activity_get`],
//!   [`QuantoRuntime::activity_set`], [`QuantoRuntime::activity_bind`],
//! * `MultiActivityDevice.add/remove` → [`QuantoRuntime::multi_add`],
//!   [`QuantoRuntime::multi_remove`],
//! * `PowerStateTrack` / `SingleActivityTrack` / `MultiActivityTrack` →
//!   [`TrackListener`].
//!
//! The runtime is deliberately passive about *time* and *energy*: every
//! mutating call takes a [`Stamp`] — the pair (local time, iCount reading)
//! that the caller captured at the moment of the event.  On the real platform
//! capturing that pair is the synchronous, 102-cycle part of logging; in the
//! simulation the OS layer reads the simulated clock and meter and passes the
//! stamp down.  This keeps the runtime free of any dependency on the
//! simulator and makes it trivially testable.

use crate::activity::{ActivityLabel, ActivityRegistry, NodeId};
use crate::cost::{CostModel, CostStats};
use crate::device::{DeviceId, DeviceTable, MultiActivityError};
use crate::log::{EntryKind, LogEntry};
use crate::logger::{OverflowPolicy, RamLogger};
use crate::power_state::{PowerStateTable, PowerStateValue};
use hw_model::{Catalog, SimDuration, SimTime, SinkId};
use std::collections::HashMap;
use std::fmt;

/// The (local time, iCount reading) pair captured at the moment of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Local node time.
    pub time: SimTime,
    /// Cumulative iCount counter value.
    pub icount: u32,
}

impl Stamp {
    /// Creates a stamp.
    pub fn new(time: SimTime, icount: u32) -> Self {
        Stamp { time, icount }
    }
}

/// How the runtime accounts for resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountingMode {
    /// Log every change to the RAM buffer for offline analysis (the paper's
    /// prototype).
    Log,
    /// Keep online per-activity accumulators instead of a log (the
    /// "logging vs. counting" alternative discussed in Section 5.1).
    Counters,
    /// Do both; useful for validating that the two agree.
    Both,
}

/// Configuration of a [`QuantoRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// RAM log capacity in entries.
    pub log_capacity: usize,
    /// What to do when the RAM log fills up.
    pub overflow_policy: OverflowPolicy,
    /// Per-sample cost parameters.
    pub cost_model: CostModel,
    /// Accounting mode.
    pub mode: AccountingMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            log_capacity: RamLogger::DEFAULT_CAPACITY,
            overflow_policy: OverflowPolicy::Flush,
            cost_model: CostModel::paper(),
            mode: AccountingMode::Log,
        }
    }
}

/// Observer of tracking events, combining the paper's `PowerStateTrack`,
/// `SingleActivityTrack` and `MultiActivityTrack` interfaces.
pub trait TrackListener {
    /// A sink's power state actually changed.
    fn power_state_changed(&mut self, _sink: SinkId, _value: PowerStateValue) {}
    /// A single-activity device changed activity.
    fn activity_changed(&mut self, _dev: DeviceId, _new: ActivityLabel) {}
    /// A single-activity device bound its previous activity to a new one.
    fn activity_bound(&mut self, _dev: DeviceId, _new: ActivityLabel) {}
    /// A multi-activity device gained an activity.
    fn activity_added(&mut self, _dev: DeviceId, _activity: ActivityLabel) {}
    /// A multi-activity device lost an activity.
    fn activity_removed(&mut self, _dev: DeviceId, _activity: ActivityLabel) {}
}

/// Online per-activity accumulators (the `Counters` accounting mode).
#[derive(Debug, Clone, Default)]
pub struct OnlineCounters {
    /// Accumulated busy time per (device, activity).
    time_per: HashMap<(DeviceId, ActivityLabel), SimDuration>,
    /// Accumulated iCount pulses charged per activity (attributed to the
    /// activity the designated CPU device was running).
    counts_per: HashMap<ActivityLabel, u64>,
}

impl OnlineCounters {
    /// Accumulated time a device spent on an activity.
    pub fn time(&self, dev: DeviceId, label: ActivityLabel) -> SimDuration {
        self.time_per
            .get(&(dev, label))
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Accumulated iCount pulses charged to an activity.
    pub fn counts(&self, label: ActivityLabel) -> u64 {
        self.counts_per.get(&label).copied().unwrap_or(0)
    }

    /// Iterates over all (device, activity, time) triples.
    pub fn times(&self) -> impl Iterator<Item = (DeviceId, ActivityLabel, SimDuration)> + '_ {
        self.time_per.iter().map(|((d, a), t)| (*d, *a, *t))
    }

    /// Iterates over all (activity, pulses) pairs.
    pub fn all_counts(&self) -> impl Iterator<Item = (ActivityLabel, u64)> + '_ {
        self.counts_per.iter().map(|(a, c)| (*a, *c))
    }

    /// Approximate RAM footprint of the accumulators, in bytes.  This is the
    /// number the "logging vs. counting" ablation compares against the RAM
    /// log.
    pub fn ram_bytes(&self) -> usize {
        // Key + value sizes for the two maps, ignoring hash-table overhead,
        // which is the honest embedded comparison (a static array would be
        // used on the mote).
        self.time_per.len() * (2 + 2 + 8) + self.counts_per.len() * (2 + 8)
    }
}

/// The per-node Quanto runtime.
pub struct QuantoRuntime {
    node: NodeId,
    registry: ActivityRegistry,
    power_states: PowerStateTable,
    devices: DeviceTable,
    logger: RamLogger,
    cost_model: CostModel,
    cost_stats: CostStats,
    mode: AccountingMode,
    counters: OnlineCounters,
    /// Last stamp at which each single-activity device changed activity.
    last_change: HashMap<DeviceId, Stamp>,
    /// The device whose activity aggregate energy is charged to in Counters
    /// mode (normally the CPU).
    cpu_device: Option<DeviceId>,
    /// CPU cycles of Quanto overhead not yet charged to the simulated CPU.
    pending_overhead_cycles: u64,
    listeners: Vec<Box<dyn TrackListener>>,
}

impl fmt::Debug for QuantoRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuantoRuntime")
            .field("node", &self.node)
            .field("devices", &self.devices.len())
            .field("log_entries", &self.logger.len())
            .field("mode", &self.mode)
            .finish()
    }
}

impl QuantoRuntime {
    /// Creates a runtime for `node` over the given hardware catalog.
    pub fn new(node: NodeId, catalog: &Catalog, config: RuntimeConfig) -> Self {
        QuantoRuntime {
            node,
            registry: ActivityRegistry::new(node),
            power_states: PowerStateTable::new(catalog),
            devices: DeviceTable::new(),
            logger: RamLogger::new(config.log_capacity, config.overflow_policy),
            cost_model: config.cost_model,
            cost_stats: CostStats::default(),
            mode: config.mode,
            counters: OnlineCounters::default(),
            last_change: HashMap::new(),
            cpu_device: None,
            pending_overhead_cycles: 0,
            listeners: Vec::new(),
        }
    }

    /// The node this runtime instruments.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The activity registry (names and kinds).
    pub fn registry(&self) -> &ActivityRegistry {
        &self.registry
    }

    /// Mutable access to the activity registry, for defining activities.
    pub fn registry_mut(&mut self) -> &mut ActivityRegistry {
        &mut self.registry
    }

    /// The accounting mode.
    pub fn mode(&self) -> AccountingMode {
        self.mode
    }

    /// Registers an observer of tracking events.
    pub fn add_listener(&mut self, listener: Box<dyn TrackListener>) {
        self.listeners.push(listener);
    }

    // ------------------------------------------------------------------
    // Device registration.
    // ------------------------------------------------------------------

    /// Registers a single-activity device (CPU, radio, flash, sensor, LED).
    pub fn register_single_device(&mut self, name: impl Into<String>) -> DeviceId {
        self.devices.register_single(name)
    }

    /// Registers a multi-activity device (hardware timer, listening radio).
    pub fn register_multi_device(&mut self, name: impl Into<String>) -> DeviceId {
        self.devices.register_multi(name)
    }

    /// Declares which device is the CPU; aggregate energy is charged to the
    /// CPU's current activity in `Counters` mode.
    pub fn set_cpu_device(&mut self, dev: DeviceId) {
        self.cpu_device = Some(dev);
    }

    /// The device table (names, kinds, current activities).
    pub fn devices(&self) -> &DeviceTable {
        &self.devices
    }

    // ------------------------------------------------------------------
    // Power-state tracking.
    // ------------------------------------------------------------------

    /// The last-known power state of a sink.
    pub fn power_state(&self, sink: SinkId) -> PowerStateValue {
        self.power_states.get(sink)
    }

    /// `PowerState.set`: a driver signals that a sink is now in `value`.
    ///
    /// Returns `true` if the state actually changed (and was therefore
    /// logged); redundant calls are idempotent.
    pub fn set_power_state(&mut self, stamp: Stamp, sink: SinkId, value: PowerStateValue) -> bool {
        match self.power_states.set(sink, value) {
            None => false,
            Some(v) => {
                self.record(LogEntry::power_state(stamp.time, stamp.icount, sink, v));
                for l in &mut self.listeners {
                    l.power_state_changed(sink, v);
                }
                true
            }
        }
    }

    /// `PowerState.setBits`: update only part of a sink's state word.
    pub fn set_power_state_bits(
        &mut self,
        stamp: Stamp,
        sink: SinkId,
        mask: PowerStateValue,
        offset: u8,
        value: PowerStateValue,
    ) -> bool {
        match self.power_states.set_bits(sink, mask, offset, value) {
            None => false,
            Some(v) => {
                self.record(LogEntry::power_state(stamp.time, stamp.icount, sink, v));
                for l in &mut self.listeners {
                    l.power_state_changed(sink, v);
                }
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Activity tracking.
    // ------------------------------------------------------------------

    /// `SingleActivityDevice.get`: the activity a device is working for.
    pub fn activity_get(&self, dev: DeviceId) -> ActivityLabel {
        self.devices.single_get(dev)
    }

    /// `SingleActivityDevice.set`: paint a device with an activity.
    ///
    /// Returns `true` if the device's activity actually changed.
    pub fn activity_set(&mut self, stamp: Stamp, dev: DeviceId, label: ActivityLabel) -> bool {
        match self.devices.single_set(dev, label) {
            None => false,
            Some(prev) => {
                self.account_interval(stamp, dev, prev);
                self.record(LogEntry::activity(
                    EntryKind::ActivityChange,
                    stamp.time,
                    stamp.icount,
                    dev,
                    label,
                ));
                for l in &mut self.listeners {
                    l.activity_changed(dev, label);
                }
                true
            }
        }
    }

    /// `SingleActivityDevice.bind`: set the device's activity *and* indicate
    /// that the previous activity's resource usage (typically a proxy
    /// activity for an interrupt) should be charged to the new one.
    ///
    /// Returns `true` if the device's activity actually changed.
    pub fn activity_bind(&mut self, stamp: Stamp, dev: DeviceId, label: ActivityLabel) -> bool {
        match self.devices.single_set(dev, label) {
            None => false,
            Some(prev) => {
                self.account_interval(stamp, dev, prev);
                self.record(LogEntry::activity(
                    EntryKind::ActivityBind,
                    stamp.time,
                    stamp.icount,
                    dev,
                    label,
                ));
                for l in &mut self.listeners {
                    l.activity_bound(dev, label);
                }
                true
            }
        }
    }

    /// Transfers the activity of `from` onto `to` — the idiom of Figure 8
    /// (`RadioActivity.set(CPUActivity.get())`).
    pub fn activity_transfer(&mut self, stamp: Stamp, from: DeviceId, to: DeviceId) -> bool {
        let label = self.activity_get(from);
        self.activity_set(stamp, to, label)
    }

    /// `MultiActivityDevice.add`.
    pub fn multi_add(
        &mut self,
        stamp: Stamp,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Result<(), MultiActivityError> {
        self.devices.multi_add(dev, label)?;
        self.record(LogEntry::activity(
            EntryKind::MultiAdd,
            stamp.time,
            stamp.icount,
            dev,
            label,
        ));
        for l in &mut self.listeners {
            l.activity_added(dev, label);
        }
        Ok(())
    }

    /// `MultiActivityDevice.remove`.
    pub fn multi_remove(
        &mut self,
        stamp: Stamp,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Result<(), MultiActivityError> {
        self.devices.multi_remove(dev, label)?;
        self.record(LogEntry::activity(
            EntryKind::MultiRemove,
            stamp.time,
            stamp.icount,
            dev,
            label,
        ));
        for l in &mut self.listeners {
            l.activity_removed(dev, label);
        }
        Ok(())
    }

    /// The current activity set of a multi-activity device.
    pub fn multi_get(&self, dev: DeviceId) -> &[ActivityLabel] {
        self.devices.multi_get(dev)
    }

    // ------------------------------------------------------------------
    // Accounting, logging, costs.
    // ------------------------------------------------------------------

    fn account_interval(&mut self, stamp: Stamp, dev: DeviceId, prev_label: ActivityLabel) {
        if matches!(self.mode, AccountingMode::Counters | AccountingMode::Both) {
            if let Some(last) = self.last_change.get(&dev) {
                let elapsed = stamp.time.saturating_duration_since(last.time);
                *self
                    .counters
                    .time_per
                    .entry((dev, prev_label))
                    .or_insert(SimDuration::ZERO) += elapsed;
                if Some(dev) == self.cpu_device {
                    let delta = stamp.icount.wrapping_sub(last.icount) as u64;
                    *self.counters.counts_per.entry(prev_label).or_insert(0) += delta;
                }
            }
        }
        self.last_change.insert(dev, stamp);
    }

    fn record(&mut self, entry: LogEntry) {
        if matches!(self.mode, AccountingMode::Log | AccountingMode::Both) {
            self.logger.record(entry);
        }
        // The synchronous cost of capturing (time, icount) and storing the
        // entry is paid regardless of where the data ends up.
        self.cost_stats.charge_sample(&self.cost_model);
        self.pending_overhead_cycles += self.cost_model.cycles_per_sample() as u64;
    }

    /// The RAM logger.
    pub fn logger(&self) -> &RamLogger {
        &self.logger
    }

    /// Attaches a streaming consumer of drained log chunks: `Flush`-policy
    /// drains and end-of-run takes go through it instead of accumulating
    /// host-side (see [`crate::sink::LogSink`]).
    pub fn set_log_sink(&mut self, sink: Box<dyn crate::sink::LogSink>) {
        self.logger.set_sink(sink);
    }

    /// Streams every held log entry through `sink` and clears the log.
    pub fn drain_log_to(&mut self, sink: &mut dyn crate::sink::LogSink) {
        self.logger.drain_to(sink);
    }

    /// Streams every remaining held entry through the attached sink (if any)
    /// and clears the log.  Returns whether a sink was attached.
    pub fn drain_log_to_attached_sink(&mut self) -> bool {
        self.logger.drain_to_attached_sink()
    }

    /// Pulls the whole log off the node, clearing it.
    pub fn take_log(&mut self) -> Vec<LogEntry> {
        self.logger.take()
    }

    /// Adopts a recycled entry buffer as the RAM log buffer (see
    /// [`RamLogger::adopt_buffer`]) — the workspace-pool seam that lets a
    /// freshly built node record into a previous run's allocation.
    pub fn adopt_log_buffer(&mut self, buf: Vec<LogEntry>) {
        self.logger.adopt_buffer(buf);
    }

    /// Surrenders the RAM log buffer's allocation to a pool (see
    /// [`RamLogger::recycle_buffer`]).
    pub fn recycle_log_buffer(&mut self) -> Vec<LogEntry> {
        self.logger.recycle_buffer()
    }

    /// The online accumulators (meaningful in `Counters`/`Both` mode).
    pub fn counters(&self) -> &OnlineCounters {
        &self.counters
    }

    /// The per-sample cost parameters in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Accumulated overhead statistics.
    pub fn cost_stats(&self) -> &CostStats {
        &self.cost_stats
    }

    /// Returns (and clears) the CPU cycles of Quanto overhead accrued since
    /// the last call.  The simulator charges these to the node's CPU so that
    /// Quanto's own cost shows up in the trace, like the paper's self-
    /// accounting continuous mode.
    pub fn take_pending_overhead_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.pending_overhead_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityId;
    use hw_model::catalog::{blink_catalog, led_state};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn runtime() -> (QuantoRuntime, SinkId, [SinkId; 3]) {
        let (cat, cpu_sink, leds) = blink_catalog();
        let rt = QuantoRuntime::new(NodeId(1), &cat, RuntimeConfig::default());
        (rt, cpu_sink, leds)
    }

    fn stamp(us: u64, ic: u32) -> Stamp {
        Stamp::new(SimTime::from_micros(us), ic)
    }

    /// Every held log entry in chronological order (the sink-era replacement
    /// for the removed `entries()` double-clone).
    fn held_log(rt: &QuantoRuntime) -> Vec<LogEntry> {
        rt.logger().chunks().flatten().copied().collect()
    }

    #[test]
    fn power_state_changes_are_logged_once() {
        let (mut rt, _cpu, leds) = runtime();
        assert!(rt.set_power_state(stamp(10, 1), leds[0], led_state::ON.as_u8() as u16));
        // Idempotent second call.
        assert!(!rt.set_power_state(stamp(20, 2), leds[0], led_state::ON.as_u8() as u16));
        assert!(rt.set_power_state(stamp(30, 3), leds[0], led_state::OFF.as_u8() as u16));
        let log = held_log(&rt);
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, EntryKind::PowerState);
        assert_eq!(log[0].sink(), Some(leds[0]));
        assert_eq!(log[0].time_us, 10);
        assert_eq!(log[0].icount, 1);
        assert_eq!(log[1].value, 0);
        assert_eq!(rt.power_state(leds[0]), 0);
    }

    #[test]
    fn activity_set_and_transfer_propagate_labels() {
        let (mut rt, _s, _l) = runtime();
        let cpu = rt.register_single_device("cpu");
        let radio = rt.register_single_device("radio");
        let act = rt.registry_mut().define_app("BounceApp");

        assert!(rt.activity_set(stamp(100, 10), cpu, act));
        assert!(!rt.activity_set(stamp(110, 11), cpu, act), "idempotent");
        // Figure 8: paint the radio with the CPU's current activity.
        assert!(rt.activity_transfer(stamp(120, 12), cpu, radio));
        assert_eq!(rt.activity_get(radio), act);

        let log = held_log(&rt);
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].device(), Some(cpu));
        assert_eq!(log[0].label(), Some(act));
        assert_eq!(log[1].device(), Some(radio));
    }

    #[test]
    fn bind_emits_bind_entries() {
        let (mut rt, _s, _l) = runtime();
        let cpu = rt.register_single_device("cpu");
        let proxy = rt.registry_mut().define_proxy("pxy_RX");
        let real = ActivityLabel::new(NodeId(4), ActivityId(1));

        rt.activity_set(stamp(10, 0), cpu, proxy);
        assert!(rt.activity_bind(stamp(50, 3), cpu, real));
        let log = held_log(&rt);
        assert_eq!(log[1].kind, EntryKind::ActivityBind);
        assert_eq!(log[1].label(), Some(real));
        assert_eq!(rt.activity_get(cpu), real);
    }

    #[test]
    fn multi_devices_log_add_and_remove() {
        let (mut rt, _s, _l) = runtime();
        let timer = rt.register_multi_device("timer_a");
        let a = rt.registry_mut().define_app("A");
        let b = rt.registry_mut().define_app("B");
        rt.multi_add(stamp(1, 0), timer, a).unwrap();
        rt.multi_add(stamp(2, 0), timer, b).unwrap();
        assert!(rt.multi_add(stamp(3, 0), timer, a).is_err());
        rt.multi_remove(stamp(4, 0), timer, a).unwrap();
        assert_eq!(rt.multi_get(timer), &[b]);
        let kinds: Vec<EntryKind> = held_log(&rt).iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EntryKind::MultiAdd,
                EntryKind::MultiAdd,
                EntryKind::MultiRemove
            ]
        );
    }

    #[test]
    fn overhead_cycles_accumulate_and_drain() {
        let (mut rt, _s, leds) = runtime();
        rt.set_power_state(stamp(1, 0), leds[0], 1);
        rt.set_power_state(stamp(2, 0), leds[1], 1);
        assert_eq!(rt.cost_stats().samples, 2);
        assert_eq!(rt.take_pending_overhead_cycles(), 204);
        assert_eq!(rt.take_pending_overhead_cycles(), 0);
        rt.set_power_state(stamp(3, 0), leds[2], 1);
        assert_eq!(rt.take_pending_overhead_cycles(), 102);
    }

    #[test]
    fn counters_mode_accumulates_time_and_energy() {
        let (cat, _cpu_sink, _leds) = blink_catalog();
        let mut rt = QuantoRuntime::new(
            NodeId(1),
            &cat,
            RuntimeConfig {
                mode: AccountingMode::Counters,
                ..RuntimeConfig::default()
            },
        );
        let cpu = rt.register_single_device("cpu");
        rt.set_cpu_device(cpu);
        let red = rt.registry_mut().define_app("Red");
        let idle = rt.registry().idle();

        // The first set establishes the baseline stamp for the CPU device.
        rt.activity_set(stamp(0, 0), cpu, red);
        // Red from 0 to 500 us, consuming 7 pulses.
        rt.activity_set(stamp(500, 7), cpu, idle);
        // Idle from 500 to 800 us, consuming 1 pulse.
        rt.activity_set(stamp(800, 8), cpu, red);

        let c = rt.counters();
        assert_eq!(c.time(cpu, red).as_micros(), 500);
        assert_eq!(c.time(cpu, idle).as_micros(), 300);
        assert_eq!(c.counts(red), 7);
        assert_eq!(c.counts(idle), 1);
        // Counters mode does not grow the log.
        assert!(rt.logger().is_empty());
        assert!(c.ram_bytes() > 0);
        assert_eq!(c.times().count(), 2);
        assert_eq!(c.all_counts().count(), 2);
    }

    #[test]
    fn listeners_observe_changes() {
        #[derive(Default)]
        struct Counter {
            events: Rc<RefCell<Vec<String>>>,
        }
        impl TrackListener for Counter {
            fn power_state_changed(&mut self, sink: SinkId, value: PowerStateValue) {
                self.events.borrow_mut().push(format!("pwr {sink} {value}"));
            }
            fn activity_changed(&mut self, dev: DeviceId, new: ActivityLabel) {
                self.events.borrow_mut().push(format!("act {dev} {new}"));
            }
        }

        let (mut rt, _s, leds) = runtime();
        let events = Rc::new(RefCell::new(Vec::new()));
        rt.add_listener(Box::new(Counter {
            events: events.clone(),
        }));
        let cpu = rt.register_single_device("cpu");
        let act = rt.registry_mut().define_app("X");
        rt.set_power_state(stamp(1, 0), leds[0], 1);
        rt.activity_set(stamp(2, 0), cpu, act);
        let seen = events.borrow();
        assert_eq!(seen.len(), 2);
        assert!(seen[0].starts_with("pwr"));
        assert!(seen[1].starts_with("act"));
    }
}
