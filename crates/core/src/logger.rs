//! The RAM logger.
//!
//! Quanto decouples *generating* event information from *tracking* it: the
//! synchronous part records a 12-byte entry to a fixed RAM buffer (800
//! entries in the prototype), and the asynchronous part gets the data off the
//! node — either by periodically stopping and dumping the buffer, or by a
//! low-priority task that drains it continuously to an external port.
//!
//! The simulated logger models the same three policies and keeps the
//! statistics the cost analysis (Table 4, Section 4.4) needs.  The
//! asynchronous half is the [`LogSink`] seam: with a sink attached, every
//! `Flush`-policy drain hands the full buffer to the sink as one chunk and
//! the logger's own memory stays bounded by its capacity; without one, the
//! drained entries accumulate host-side in `drained` (the legacy batch
//! behaviour the analysis wrappers still rely on).

use crate::log::{LogEntry, ENTRY_SIZE_BYTES};
use crate::sink::LogSink;
use std::fmt;

/// What to do when the RAM buffer fills up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Stop recording; further entries are dropped and counted.  This is the
    /// paper's first implementation (record, stop, dump offline).
    Stop,
    /// Overwrite the oldest entries (a ring buffer).
    Wrap,
    /// Move the full buffer to the drained log, modelling the continuous
    /// logging mode where a low-priority task empties the buffer to an
    /// external interface while the CPU would otherwise be idle.
    Flush,
}

/// Fixed-capacity in-RAM event log with overflow statistics.
pub struct RamLogger {
    capacity: usize,
    policy: OverflowPolicy,
    buffer: Vec<LogEntry>,
    /// Entries already moved out of the RAM buffer (Flush policy) but still
    /// held host-side because no sink is attached.
    drained: Vec<LogEntry>,
    /// Streaming consumer of drained chunks; when attached, `Flush` drains
    /// and end-of-run takes go through it instead of growing `drained`.
    sink: Option<Box<dyn LogSink>>,
    /// Entries that left the logger through a sink (attached or explicit).
    flushed: u64,
    /// Entries lost to overflow (Stop) or overwritten (Wrap).
    dropped: u64,
    /// Total entries ever offered to the logger.
    offered: u64,
    /// Number of times the buffer filled up.
    overflows: u64,
}

impl fmt::Debug for RamLogger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RamLogger")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("buffered", &self.buffer.len())
            .field("drained", &self.drained.len())
            .field("sink", &self.sink.is_some())
            .field("flushed", &self.flushed)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl RamLogger {
    /// The prototype's default buffer size, in entries.
    pub const DEFAULT_CAPACITY: usize = 800;

    /// Creates a logger with the given capacity and overflow policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "logger capacity must be positive");
        RamLogger {
            capacity,
            policy,
            buffer: Vec::with_capacity(capacity),
            drained: Vec::new(),
            sink: None,
            flushed: 0,
            dropped: 0,
            offered: 0,
            overflows: 0,
        }
    }

    /// The paper's default configuration: an 800-entry buffer that stops when
    /// full.
    pub fn paper_default() -> Self {
        RamLogger::new(Self::DEFAULT_CAPACITY, OverflowPolicy::Stop)
    }

    /// The buffer capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity * ENTRY_SIZE_BYTES
    }

    /// The overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Attaches the streaming consumer of drained chunks.  Entries already
    /// sitting in `drained` are handed to the sink first, so the sink sees
    /// every surviving entry exactly once and in order.
    pub fn set_sink(&mut self, mut sink: Box<dyn LogSink>) {
        if !self.drained.is_empty() {
            sink.accept(&self.drained);
            self.flushed += self.drained.len() as u64;
            self.drained.clear();
        }
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink, if one was attached.  Entries flushed
    /// so far stay wherever the sink put them.
    pub fn take_sink(&mut self) -> Option<Box<dyn LogSink>> {
        self.sink.take()
    }

    /// Whether a streaming sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends an entry, applying the overflow policy if the buffer is full.
    ///
    /// Returns `true` if the entry was stored (possibly evicting another),
    /// `false` if it was dropped.  The not-full case is the steady-state hot
    /// path: one bounds check and a push into pre-reserved capacity, with the
    /// policy `match` hoisted into the cold overflow handler.
    #[inline]
    pub fn record(&mut self, entry: LogEntry) -> bool {
        self.offered += 1;
        if self.buffer.len() < self.capacity {
            self.buffer.push(entry);
            return true;
        }
        self.record_overflow(entry)
    }

    /// The buffer-full slow path — at most once per `capacity` records under
    /// `Flush`, so it stays out of the inlined fast path.
    #[cold]
    #[inline(never)]
    fn record_overflow(&mut self, entry: LogEntry) -> bool {
        self.overflows += 1;
        match self.policy {
            OverflowPolicy::Stop => {
                self.dropped += 1;
                false
            }
            OverflowPolicy::Wrap => {
                self.buffer.remove(0);
                self.buffer.push(entry);
                self.dropped += 1;
                true
            }
            OverflowPolicy::Flush => {
                if let Some(sink) = self.sink.as_mut() {
                    sink.accept(&self.buffer);
                    self.flushed += self.buffer.len() as u64;
                    self.buffer.clear();
                } else {
                    self.drained.append(&mut self.buffer);
                }
                self.buffer.push(entry);
                true
            }
        }
    }

    /// Entries currently in the RAM buffer.
    pub fn buffered(&self) -> &[LogEntry] {
        &self.buffer
    }

    /// Entries that were flushed out of the buffer and are still held
    /// host-side (always empty while a sink is attached).
    pub fn drained(&self) -> &[LogEntry] {
        &self.drained
    }

    /// The surviving held entries as chunks in chronological order (drained
    /// then buffered) — the non-destructive, copy-free view a [`LogSink`]
    /// consumer iterates.
    pub fn chunks(&self) -> impl Iterator<Item = &[LogEntry]> {
        [self.drained.as_slice(), self.buffer.as_slice()]
            .into_iter()
            .filter(|c| !c.is_empty())
    }

    /// Number of surviving entries still held by the logger (entries that
    /// already left through a sink are counted by [`RamLogger::flushed`]).
    pub fn len(&self) -> usize {
        self.drained.len() + self.buffer.len()
    }

    /// Returns true if the logger holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries offered to the logger (stored plus dropped).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Entries lost to the overflow policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries that left the logger through a sink.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Number of times the buffer was found full.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Bytes of RAM the surviving entries occupy (drained entries are assumed
    /// to have left the node).
    pub fn ram_bytes_used(&self) -> usize {
        self.buffer.len() * ENTRY_SIZE_BYTES
    }

    /// Streams every held entry (drained then buffered, in chronological
    /// order) through `sink` and clears the logger — the end-of-run "host
    /// pulls the log off the node" step, without materialising an
    /// intermediate `Vec`.
    pub fn drain_to(&mut self, sink: &mut dyn LogSink) {
        for chunk in [self.drained.as_slice(), self.buffer.as_slice()] {
            if !chunk.is_empty() {
                sink.accept(chunk);
            }
        }
        self.flushed += self.len() as u64;
        self.drained.clear();
        self.buffer.clear();
    }

    /// Streams every remaining held entry through the *attached* sink and
    /// clears the logger.  No-op (returning `false`) when no sink is
    /// attached.
    pub fn drain_to_attached_sink(&mut self) -> bool {
        let Some(mut sink) = self.sink.take() else {
            return false;
        };
        self.drain_to(sink.as_mut());
        self.sink = Some(sink);
        true
    }

    /// Simulates the host pulling the whole log off the node: returns every
    /// surviving held entry and clears the logger.  Moves the `drained`
    /// backlog out wholesale instead of copying it — only the buffered tail
    /// (at most `capacity` entries) is appended.
    pub fn take(&mut self) -> Vec<LogEntry> {
        let n = self.len() as u64;
        let mut all = std::mem::take(&mut self.drained);
        all.append(&mut self.buffer);
        self.flushed += n;
        all
    }

    /// Returns the logger to its just-constructed state — empty, zeroed
    /// statistics, no sink — keeping the RAM buffer's allocation so a pooled
    /// logger records without reallocating.  Capacity and policy are
    /// unchanged.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.drained.clear();
        self.sink = None;
        self.flushed = 0;
        self.dropped = 0;
        self.offered = 0;
        self.overflows = 0;
    }

    /// Adopts a recycled entry buffer as the RAM buffer, keeping its
    /// allocation.  Only valid on an empty logger (a pool hands buffers to
    /// freshly built or [`RamLogger::reset`] loggers); the buffer is cleared
    /// and grown to at least `capacity` entries.
    pub fn adopt_buffer(&mut self, mut buf: Vec<LogEntry>) {
        debug_assert!(
            self.buffer.is_empty(),
            "adopt_buffer requires an empty logger"
        );
        buf.clear();
        if buf.capacity() < self.capacity {
            buf.reserve(self.capacity - buf.len());
        }
        self.buffer = buf;
    }

    /// Surrenders the RAM buffer's allocation to a pool, clearing any held
    /// entries without accounting them (the run is over; the replacement
    /// buffer is empty).  The logger is left with an unallocated buffer and
    /// must be rebuilt or re-adopted before further use.
    pub fn recycle_buffer(&mut self) -> Vec<LogEntry> {
        let mut buf = std::mem::take(&mut self.buffer);
        buf.clear();
        buf
    }
}

impl Default for RamLogger {
    fn default() -> Self {
        RamLogger::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;
    use hw_model::{SimTime, SinkId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn entry(i: u32) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(i as u64), i, SinkId(1), (i % 4) as u16)
    }

    /// Every held entry in chronological order (the old `entries()` view).
    fn held(l: &RamLogger) -> Vec<LogEntry> {
        l.chunks().flatten().copied().collect()
    }

    #[test]
    fn default_matches_paper_dimensions() {
        let l = RamLogger::paper_default();
        assert_eq!(l.capacity(), 800);
        assert_eq!(l.capacity_bytes(), 9600);
        assert_eq!(l.policy(), OverflowPolicy::Stop);
        assert!(l.is_empty());
        assert!(!l.has_sink());
    }

    #[test]
    fn stop_policy_drops_after_capacity() {
        let mut l = RamLogger::new(3, OverflowPolicy::Stop);
        for i in 0..5 {
            l.record(entry(i));
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.dropped(), 2);
        assert_eq!(l.offered(), 5);
        assert_eq!(l.overflows(), 2);
        // The first three survive, all of them still in the RAM buffer.
        assert_eq!(held(&l)[0], entry(0));
        assert_eq!(held(&l)[2], entry(2));
        assert_eq!(l.buffered(), &[entry(0), entry(1), entry(2)][..]);
        assert!(l.drained().is_empty(), "Stop never drains");
    }

    #[test]
    fn wrap_policy_keeps_newest() {
        let mut l = RamLogger::new(3, OverflowPolicy::Wrap);
        for i in 0..5 {
            assert!(l.record(entry(i)));
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.dropped(), 2);
        let e = held(&l);
        assert_eq!(e[0], entry(2));
        assert_eq!(e[2], entry(4));
        // The ring lives entirely in the RAM buffer.
        assert_eq!(l.buffered(), &[entry(2), entry(3), entry(4)][..]);
        assert!(l.drained().is_empty(), "Wrap never drains");
    }

    #[test]
    fn flush_policy_preserves_everything() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        for i in 0..7 {
            assert!(l.record(entry(i)));
        }
        assert_eq!(l.dropped(), 0);
        assert_eq!(l.len(), 7);
        // Chronological order is preserved across drain boundaries.
        let e = held(&l);
        for (i, entry_i) in e.iter().enumerate() {
            assert_eq!(*entry_i, entry(i as u32));
        }
        assert!(l.ram_bytes_used() <= 2 * ENTRY_SIZE_BYTES);
        assert!(!l.drained().is_empty());
        assert!(!l.buffered().is_empty());
    }

    #[test]
    fn attached_sink_bounds_logger_memory() {
        let collected: Rc<RefCell<Vec<LogEntry>>> = Rc::new(RefCell::new(Vec::new()));
        let tap = collected.clone();
        let mut l = RamLogger::new(4, OverflowPolicy::Flush);
        l.set_sink(Box::new(move |chunk: &[LogEntry]| {
            tap.borrow_mut().extend_from_slice(chunk);
        }));
        assert!(l.has_sink());
        const N: u32 = 23;
        for i in 0..N {
            assert!(l.record(entry(i)));
            // With a sink attached, nothing accumulates host-side.
            assert!(l.drained().is_empty());
            assert!(l.len() <= l.capacity());
        }
        // The end-of-run take goes through the same sink.
        assert!(l.drain_to_attached_sink());
        assert!(l.is_empty());
        assert_eq!(l.flushed(), N as u64);
        assert_eq!(l.dropped(), 0);
        let seen = collected.borrow();
        assert_eq!(seen.len(), N as usize);
        for (i, e) in seen.iter().enumerate() {
            assert_eq!(*e, entry(i as u32), "sink order preserved");
        }
    }

    #[test]
    fn set_sink_forwards_already_drained_entries() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        for i in 0..5 {
            l.record(entry(i));
        }
        let drained_before = l.drained().len();
        assert!(drained_before > 0);
        let collected: Rc<RefCell<Vec<LogEntry>>> = Rc::new(RefCell::new(Vec::new()));
        let tap = collected.clone();
        l.set_sink(Box::new(move |chunk: &[LogEntry]| {
            tap.borrow_mut().extend_from_slice(chunk);
        }));
        assert!(l.drained().is_empty(), "drained handed to the sink");
        assert_eq!(l.flushed(), drained_before as u64);
        assert_eq!(collected.borrow().len(), drained_before);
        assert_eq!(collected.borrow()[0], entry(0));
    }

    #[test]
    fn drain_to_attached_sink_without_sink_is_a_noop() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        l.record(entry(0));
        assert!(!l.drain_to_attached_sink());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn take_clears_the_log() {
        let mut l = RamLogger::new(4, OverflowPolicy::Stop);
        l.record(entry(0));
        l.record(entry(1));
        let taken = l.take();
        assert_eq!(taken.len(), 2);
        assert!(l.is_empty());
        assert_eq!(l.ram_bytes_used(), 0);
        assert_eq!(l.flushed(), 2, "take is sink-based draining");
    }

    #[test]
    fn take_moves_the_drained_backlog_without_copying() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        for i in 0..7 {
            l.record(entry(i));
        }
        let backlog_ptr = l.drained().as_ptr();
        let taken = l.take();
        assert_eq!(taken.len(), 7);
        assert_eq!(
            taken.as_ptr(),
            backlog_ptr,
            "backlog must be moved, not copied"
        );
        for (i, e) in taken.iter().enumerate() {
            assert_eq!(*e, entry(i as u32));
        }
        assert!(l.is_empty());
        assert_eq!(l.flushed(), 7);
        assert_eq!(l.offered(), 7);
    }

    #[test]
    fn reset_returns_logger_to_boot_state_keeping_capacity() {
        let mut l = RamLogger::new(3, OverflowPolicy::Flush);
        l.set_sink(Box::new(CountingSink::new()));
        for i in 0..10 {
            l.record(entry(i));
        }
        let buf_ptr = l.buffered().as_ptr();
        l.reset();
        assert!(l.is_empty());
        assert!(!l.has_sink());
        assert_eq!(l.offered(), 0);
        assert_eq!(l.flushed(), 0);
        assert_eq!(l.dropped(), 0);
        assert_eq!(l.overflows(), 0);
        assert_eq!(l.capacity(), 3);
        assert_eq!(l.policy(), OverflowPolicy::Flush);
        l.record(entry(0));
        assert_eq!(
            l.buffered().as_ptr(),
            buf_ptr,
            "reset keeps the buffer allocation"
        );
    }

    #[test]
    fn recycled_buffer_round_trips_through_adoption() {
        let mut a = RamLogger::new(4, OverflowPolicy::Stop);
        a.record(entry(0));
        a.record(entry(1));
        let mut recycled = a.recycle_buffer();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 4);
        recycled.push(entry(9)); // stale garbage a pool might carry
        let ptr = recycled.as_ptr();
        let mut b = RamLogger::new(4, OverflowPolicy::Wrap);
        b.adopt_buffer(recycled);
        assert!(b.is_empty(), "adopted buffer arrives cleared");
        b.record(entry(5));
        assert_eq!(b.buffered(), &[entry(5)][..]);
        assert_eq!(b.buffered().as_ptr(), ptr, "allocation is reused");
    }

    #[test]
    fn adopting_an_undersized_buffer_grows_it_to_capacity() {
        let mut l = RamLogger::new(16, OverflowPolicy::Stop);
        l.adopt_buffer(Vec::new());
        assert!(l.buffered().is_empty());
        for i in 0..16 {
            assert!(l.record(entry(i)));
        }
        assert_eq!(l.overflows(), 0);
    }

    #[test]
    fn drain_to_streams_in_chunk_order() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        for i in 0..5 {
            l.record(entry(i));
        }
        let mut counter = CountingSink::new();
        l.drain_to(&mut counter);
        // One drained chunk plus one buffered chunk.
        assert_eq!(counter.chunks(), 2);
        assert_eq!(counter.entries(), 5);
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RamLogger::new(0, OverflowPolicy::Stop);
    }

    #[test]
    fn filling_exactly_to_default_capacity_never_overflows() {
        for policy in [
            OverflowPolicy::Stop,
            OverflowPolicy::Wrap,
            OverflowPolicy::Flush,
        ] {
            let mut l = RamLogger::new(RamLogger::DEFAULT_CAPACITY, policy);
            for i in 0..RamLogger::DEFAULT_CAPACITY as u32 {
                assert!(l.record(entry(i)), "{policy:?} rejected entry {i}");
            }
            assert_eq!(l.len(), RamLogger::DEFAULT_CAPACITY);
            assert_eq!(l.offered(), RamLogger::DEFAULT_CAPACITY as u64);
            assert_eq!(l.overflows(), 0, "{policy:?} overflowed while not full");
            assert_eq!(l.dropped(), 0);
            assert_eq!(l.ram_bytes_used(), l.capacity_bytes());
        }
    }

    #[test]
    fn overflow_accounting_is_consistent_at_default_capacity() {
        // Push well past the paper's 800-entry buffer (three wraps' worth)
        // and check each policy's books balance.
        const N: u32 = 2_500;
        const CAP: usize = RamLogger::DEFAULT_CAPACITY;
        let expected_overflows = N as u64 - CAP as u64;
        for policy in [
            OverflowPolicy::Stop,
            OverflowPolicy::Wrap,
            OverflowPolicy::Flush,
        ] {
            let mut l = RamLogger::new(CAP, policy);
            let mut stored = 0u64;
            for i in 0..N {
                if l.record(entry(i)) {
                    stored += 1;
                }
            }
            assert_eq!(l.offered(), N as u64, "{policy:?} offered");
            // The books always balance: every offered entry either survives
            // somewhere or was counted as dropped.
            assert_eq!(
                l.len() as u64 + l.flushed() + l.dropped(),
                l.offered(),
                "{policy:?} lost entries without accounting for them"
            );
            // The RAM buffer never exceeds its fixed footprint.
            assert!(l.buffered().len() <= CAP);
            assert!(l.ram_bytes_used() <= l.capacity_bytes());
            match policy {
                OverflowPolicy::Stop => {
                    // Every record past capacity finds the buffer full and
                    // is rejected; the oldest entries survive.
                    assert_eq!(stored, CAP as u64);
                    assert_eq!(l.len(), CAP);
                    assert_eq!(l.overflows(), expected_overflows);
                    assert_eq!(l.dropped(), expected_overflows);
                    assert_eq!(held(&l)[0], entry(0));
                    assert_eq!(held(&l)[CAP - 1], entry(CAP as u32 - 1));
                }
                OverflowPolicy::Wrap => {
                    // Every record is accepted but the oldest are overwritten.
                    assert_eq!(stored, N as u64);
                    assert_eq!(l.len(), CAP);
                    assert_eq!(l.overflows(), expected_overflows);
                    assert_eq!(l.dropped(), expected_overflows);
                    assert_eq!(held(&l)[0], entry(N - CAP as u32));
                    assert_eq!(held(&l)[CAP - 1], entry(N - 1));
                }
                OverflowPolicy::Flush => {
                    // Draining empties the buffer, so the logger only finds
                    // it full once per refill — and nothing is ever lost.
                    assert_eq!(stored, N as u64);
                    assert_eq!(l.len(), N as usize);
                    assert_eq!(l.overflows(), (N as u64 - CAP as u64).div_ceil(CAP as u64));
                    assert_eq!(l.dropped(), 0);
                    assert_eq!(held(&l)[0], entry(0));
                    assert_eq!(held(&l)[N as usize - 1], entry(N - 1));
                }
            }
        }
    }

    #[test]
    fn sink_backed_flush_books_balance_too() {
        const N: u32 = 2_500;
        const CAP: usize = 800;
        let mut l = RamLogger::new(CAP, OverflowPolicy::Flush);
        let counter = Rc::new(RefCell::new(CountingSink::new()));
        let tap = counter.clone();
        l.set_sink(Box::new(move |chunk: &[LogEntry]| {
            tap.borrow_mut().accept(chunk);
        }));
        for i in 0..N {
            assert!(l.record(entry(i)));
        }
        assert_eq!(
            l.len() as u64 + l.flushed() + l.dropped(),
            l.offered(),
            "sink-backed books must balance"
        );
        assert_eq!(l.flushed(), counter.borrow().entries());
        l.drain_to_attached_sink();
        assert_eq!(counter.borrow().entries(), N as u64);
        assert_eq!(l.dropped(), 0);
    }
}
