//! The RAM logger.
//!
//! Quanto decouples *generating* event information from *tracking* it: the
//! synchronous part records a 12-byte entry to a fixed RAM buffer (800
//! entries in the prototype), and the asynchronous part gets the data off the
//! node — either by periodically stopping and dumping the buffer, or by a
//! low-priority task that drains it continuously to an external port.
//!
//! The simulated logger models the same three policies and keeps the
//! statistics the cost analysis (Table 4, Section 4.4) needs.

use crate::log::{LogEntry, ENTRY_SIZE_BYTES};

/// What to do when the RAM buffer fills up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Stop recording; further entries are dropped and counted.  This is the
    /// paper's first implementation (record, stop, dump offline).
    Stop,
    /// Overwrite the oldest entries (a ring buffer).
    Wrap,
    /// Move the full buffer to the drained log, modelling the continuous
    /// logging mode where a low-priority task empties the buffer to an
    /// external interface while the CPU would otherwise be idle.
    Flush,
}

/// Fixed-capacity in-RAM event log with overflow statistics.
#[derive(Debug, Clone)]
pub struct RamLogger {
    capacity: usize,
    policy: OverflowPolicy,
    buffer: Vec<LogEntry>,
    /// Entries already moved out of the RAM buffer (Flush policy).
    drained: Vec<LogEntry>,
    /// Entries lost to overflow (Stop) or overwritten (Wrap).
    dropped: u64,
    /// Total entries ever offered to the logger.
    offered: u64,
    /// Number of times the buffer filled up.
    overflows: u64,
}

impl RamLogger {
    /// The prototype's default buffer size, in entries.
    pub const DEFAULT_CAPACITY: usize = 800;

    /// Creates a logger with the given capacity and overflow policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "logger capacity must be positive");
        RamLogger {
            capacity,
            policy,
            buffer: Vec::with_capacity(capacity),
            drained: Vec::new(),
            dropped: 0,
            offered: 0,
            overflows: 0,
        }
    }

    /// The paper's default configuration: an 800-entry buffer that stops when
    /// full.
    pub fn paper_default() -> Self {
        RamLogger::new(Self::DEFAULT_CAPACITY, OverflowPolicy::Stop)
    }

    /// The buffer capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity * ENTRY_SIZE_BYTES
    }

    /// The overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Appends an entry, applying the overflow policy if the buffer is full.
    ///
    /// Returns `true` if the entry was stored (possibly evicting another),
    /// `false` if it was dropped.
    pub fn record(&mut self, entry: LogEntry) -> bool {
        self.offered += 1;
        if self.buffer.len() < self.capacity {
            self.buffer.push(entry);
            return true;
        }
        self.overflows += 1;
        match self.policy {
            OverflowPolicy::Stop => {
                self.dropped += 1;
                false
            }
            OverflowPolicy::Wrap => {
                self.buffer.remove(0);
                self.buffer.push(entry);
                self.dropped += 1;
                true
            }
            OverflowPolicy::Flush => {
                self.drained.append(&mut self.buffer);
                self.buffer.push(entry);
                true
            }
        }
    }

    /// Entries currently in the RAM buffer.
    pub fn buffered(&self) -> &[LogEntry] {
        &self.buffer
    }

    /// Entries that were flushed out of the buffer.
    pub fn drained(&self) -> &[LogEntry] {
        &self.drained
    }

    /// All surviving entries in chronological order (drained then buffered).
    pub fn entries(&self) -> Vec<LogEntry> {
        let mut all = self.drained.clone();
        all.extend_from_slice(&self.buffer);
        all
    }

    /// Number of surviving entries.
    pub fn len(&self) -> usize {
        self.drained.len() + self.buffer.len()
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries offered to the logger (stored plus dropped).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Entries lost to the overflow policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of times the buffer was found full.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Bytes of RAM the surviving entries occupy (drained entries are assumed
    /// to have left the node).
    pub fn ram_bytes_used(&self) -> usize {
        self.buffer.len() * ENTRY_SIZE_BYTES
    }

    /// Simulates the host pulling the whole log off the node: returns every
    /// surviving entry and clears the logger.
    pub fn take(&mut self) -> Vec<LogEntry> {
        let all = self.entries();
        self.buffer.clear();
        self.drained.clear();
        all
    }
}

impl Default for RamLogger {
    fn default() -> Self {
        RamLogger::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::{SimTime, SinkId};

    fn entry(i: u32) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(i as u64), i, SinkId(1), (i % 4) as u16)
    }

    #[test]
    fn default_matches_paper_dimensions() {
        let l = RamLogger::paper_default();
        assert_eq!(l.capacity(), 800);
        assert_eq!(l.capacity_bytes(), 9600);
        assert_eq!(l.policy(), OverflowPolicy::Stop);
        assert!(l.is_empty());
    }

    #[test]
    fn stop_policy_drops_after_capacity() {
        let mut l = RamLogger::new(3, OverflowPolicy::Stop);
        for i in 0..5 {
            l.record(entry(i));
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.dropped(), 2);
        assert_eq!(l.offered(), 5);
        assert_eq!(l.overflows(), 2);
        // The first three survive.
        assert_eq!(l.entries()[0], entry(0));
        assert_eq!(l.entries()[2], entry(2));
    }

    #[test]
    fn wrap_policy_keeps_newest() {
        let mut l = RamLogger::new(3, OverflowPolicy::Wrap);
        for i in 0..5 {
            assert!(l.record(entry(i)));
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.dropped(), 2);
        let e = l.entries();
        assert_eq!(e[0], entry(2));
        assert_eq!(e[2], entry(4));
    }

    #[test]
    fn flush_policy_preserves_everything() {
        let mut l = RamLogger::new(2, OverflowPolicy::Flush);
        for i in 0..7 {
            assert!(l.record(entry(i)));
        }
        assert_eq!(l.dropped(), 0);
        assert_eq!(l.len(), 7);
        // Chronological order is preserved across drain boundaries.
        let e = l.entries();
        for (i, entry_i) in e.iter().enumerate() {
            assert_eq!(*entry_i, entry(i as u32));
        }
        assert!(l.ram_bytes_used() <= 2 * ENTRY_SIZE_BYTES);
        assert!(!l.drained().is_empty());
        assert!(!l.buffered().is_empty());
    }

    #[test]
    fn take_clears_the_log() {
        let mut l = RamLogger::new(4, OverflowPolicy::Stop);
        l.record(entry(0));
        l.record(entry(1));
        let taken = l.take();
        assert_eq!(taken.len(), 2);
        assert!(l.is_empty());
        assert_eq!(l.ram_bytes_used(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RamLogger::new(0, OverflowPolicy::Stop);
    }

    #[test]
    fn filling_exactly_to_default_capacity_never_overflows() {
        for policy in [
            OverflowPolicy::Stop,
            OverflowPolicy::Wrap,
            OverflowPolicy::Flush,
        ] {
            let mut l = RamLogger::new(RamLogger::DEFAULT_CAPACITY, policy);
            for i in 0..RamLogger::DEFAULT_CAPACITY as u32 {
                assert!(l.record(entry(i)), "{policy:?} rejected entry {i}");
            }
            assert_eq!(l.len(), RamLogger::DEFAULT_CAPACITY);
            assert_eq!(l.offered(), RamLogger::DEFAULT_CAPACITY as u64);
            assert_eq!(l.overflows(), 0, "{policy:?} overflowed while not full");
            assert_eq!(l.dropped(), 0);
            assert_eq!(l.ram_bytes_used(), l.capacity_bytes());
        }
    }

    #[test]
    fn overflow_accounting_is_consistent_at_default_capacity() {
        // Push well past the paper's 800-entry buffer (three wraps' worth)
        // and check each policy's books balance.
        const N: u32 = 2_500;
        const CAP: usize = RamLogger::DEFAULT_CAPACITY;
        let expected_overflows = N as u64 - CAP as u64;
        for policy in [
            OverflowPolicy::Stop,
            OverflowPolicy::Wrap,
            OverflowPolicy::Flush,
        ] {
            let mut l = RamLogger::new(CAP, policy);
            let mut stored = 0u64;
            for i in 0..N {
                if l.record(entry(i)) {
                    stored += 1;
                }
            }
            assert_eq!(l.offered(), N as u64, "{policy:?} offered");
            // The books always balance: every offered entry either survives
            // somewhere or was counted as dropped.
            assert_eq!(
                l.len() as u64 + l.dropped(),
                l.offered(),
                "{policy:?} lost entries without accounting for them"
            );
            // The RAM buffer never exceeds its fixed footprint.
            assert!(l.buffered().len() <= CAP);
            assert!(l.ram_bytes_used() <= l.capacity_bytes());
            match policy {
                OverflowPolicy::Stop => {
                    // Every record past capacity finds the buffer full and
                    // is rejected; the oldest entries survive.
                    assert_eq!(stored, CAP as u64);
                    assert_eq!(l.len(), CAP);
                    assert_eq!(l.overflows(), expected_overflows);
                    assert_eq!(l.dropped(), expected_overflows);
                    assert_eq!(l.entries()[0], entry(0));
                    assert_eq!(l.entries()[CAP - 1], entry(CAP as u32 - 1));
                }
                OverflowPolicy::Wrap => {
                    // Every record is accepted but the oldest are overwritten.
                    assert_eq!(stored, N as u64);
                    assert_eq!(l.len(), CAP);
                    assert_eq!(l.overflows(), expected_overflows);
                    assert_eq!(l.dropped(), expected_overflows);
                    assert_eq!(l.entries()[0], entry(N - CAP as u32));
                    assert_eq!(l.entries()[CAP - 1], entry(N - 1));
                }
                OverflowPolicy::Flush => {
                    // Draining empties the buffer, so the logger only finds
                    // it full once per refill — and nothing is ever lost.
                    assert_eq!(stored, N as u64);
                    assert_eq!(l.len(), N as usize);
                    assert_eq!(l.overflows(), (N as u64 - CAP as u64).div_ceil(CAP as u64));
                    assert_eq!(l.dropped(), 0);
                    assert_eq!(l.entries()[0], entry(0));
                    assert_eq!(l.entries()[N as usize - 1], entry(N - 1));
                }
            }
        }
    }
}
