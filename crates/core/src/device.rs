//! Activity state of devices.
//!
//! Quanto distinguishes devices that can only work on behalf of one activity
//! at a time (the CPU, the radio transmit path — `SingleActivityDevice`) from
//! devices that can serve several activities simultaneously (hardware timers,
//! the radio receive path while listening — `MultiActivityDevice`).  Each
//! hardware component is represented by one instance of these interfaces and
//! keeps its activity state globally accessible (Figures 5 and 6).

use crate::activity::ActivityLabel;
use std::fmt;

/// Identifier of a Quanto-tracked device (resource) on one node.
///
/// This is the `res_id` that appears in log entries, so it is deliberately a
/// single byte, like in the paper's 12-byte entry format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DeviceId(pub u8);

impl DeviceId {
    /// Returns the raw id.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// Whether a device carries one activity or a set of activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// One activity at a time (CPU, radio TX, flash, sensor, LED).
    Single,
    /// A set of concurrent activities (hardware timer, radio RX while
    /// listening).
    Multi,
}

/// Activity state of a single-activity device.
#[derive(Debug, Clone)]
pub struct SingleActivityState {
    /// Device name, e.g. `"cpu"` or `"radio"`.
    pub name: String,
    /// The activity currently charged for this device's work.
    pub current: ActivityLabel,
}

/// Activity state of a multi-activity device.
#[derive(Debug, Clone)]
pub struct MultiActivityState {
    /// Device name, e.g. `"timer_a"`.
    pub name: String,
    /// The set of activities currently sharing this device, in insertion
    /// order.  Resource usage is split among them by the accounting policy
    /// (the default, like the paper, is an equal split).
    pub current: Vec<ActivityLabel>,
}

/// Error returned by multi-activity device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiActivityError {
    /// `add` was called with an activity already in the set.
    AlreadyPresent,
    /// `remove` was called with an activity not in the set.
    NotPresent,
}

impl fmt::Display for MultiActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiActivityError::AlreadyPresent => write!(f, "activity already present"),
            MultiActivityError::NotPresent => write!(f, "activity not present"),
        }
    }
}

impl std::error::Error for MultiActivityError {}

/// The per-node table of tracked devices and their activity state.
#[derive(Debug, Clone, Default)]
pub struct DeviceTable {
    singles: Vec<SingleActivityState>,
    multis: Vec<MultiActivityState>,
    /// Maps DeviceId -> (kind, index into the per-kind vec).
    index: Vec<(DeviceKind, usize)>,
}

impl DeviceTable {
    /// Creates an empty device table.
    pub fn new() -> Self {
        DeviceTable::default()
    }

    /// Registers a single-activity device, initially idle.
    ///
    /// # Panics
    ///
    /// Panics if more than 256 devices are registered (the log format's
    /// `res_id` is one byte).
    pub fn register_single(&mut self, name: impl Into<String>) -> DeviceId {
        let id = self.next_id();
        self.index.push((DeviceKind::Single, self.singles.len()));
        self.singles.push(SingleActivityState {
            name: name.into(),
            current: ActivityLabel::IDLE,
        });
        id
    }

    /// Registers a multi-activity device with an empty activity set.
    ///
    /// # Panics
    ///
    /// Panics if more than 256 devices are registered.
    pub fn register_multi(&mut self, name: impl Into<String>) -> DeviceId {
        let id = self.next_id();
        self.index.push((DeviceKind::Multi, self.multis.len()));
        self.multis.push(MultiActivityState {
            name: name.into(),
            current: Vec::new(),
        });
        id
    }

    fn next_id(&self) -> DeviceId {
        assert!(
            self.index.len() < 256,
            "at most 256 Quanto devices per node (res_id is one byte)"
        );
        DeviceId(self.index.len() as u8)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns true if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The kind of a device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` was not registered.
    pub fn kind(&self, dev: DeviceId) -> DeviceKind {
        self.index[dev.as_u8() as usize].0
    }

    /// The name of a device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` was not registered.
    pub fn name(&self, dev: DeviceId) -> &str {
        let (kind, i) = self.index[dev.as_u8() as usize];
        match kind {
            DeviceKind::Single => &self.singles[i].name,
            DeviceKind::Multi => &self.multis[i].name,
        }
    }

    /// Looks up a device by name.
    pub fn by_name(&self, name: &str) -> Option<DeviceId> {
        (0..self.index.len())
            .map(|i| DeviceId(i as u8))
            .find(|d| self.name(*d) == name)
    }

    /// Iterates over all registered device ids.
    pub fn ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.index.len() as u8).map(DeviceId)
    }

    /// The current activity of a single-activity device
    /// (`SingleActivityDevice.get`).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not a registered single-activity device.
    pub fn single_get(&self, dev: DeviceId) -> ActivityLabel {
        let (kind, i) = self.index[dev.as_u8() as usize];
        assert_eq!(
            kind,
            DeviceKind::Single,
            "{dev} is not a single-activity device"
        );
        self.singles[i].current
    }

    /// Sets the current activity of a single-activity device
    /// (`SingleActivityDevice.set`).  Returns the previous activity, or
    /// `None` if the label did not change (redundant sets are idempotent and
    /// should not be logged).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not a registered single-activity device.
    pub fn single_set(&mut self, dev: DeviceId, label: ActivityLabel) -> Option<ActivityLabel> {
        let (kind, i) = self.index[dev.as_u8() as usize];
        assert_eq!(
            kind,
            DeviceKind::Single,
            "{dev} is not a single-activity device"
        );
        let prev = self.singles[i].current;
        if prev == label {
            None
        } else {
            self.singles[i].current = label;
            Some(prev)
        }
    }

    /// The current activity set of a multi-activity device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not a registered multi-activity device.
    pub fn multi_get(&self, dev: DeviceId) -> &[ActivityLabel] {
        let (kind, i) = self.index[dev.as_u8() as usize];
        assert_eq!(
            kind,
            DeviceKind::Multi,
            "{dev} is not a multi-activity device"
        );
        &self.multis[i].current
    }

    /// Adds an activity to a multi-activity device
    /// (`MultiActivityDevice.add`).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not a registered multi-activity device.
    pub fn multi_add(
        &mut self,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Result<(), MultiActivityError> {
        let (kind, i) = self.index[dev.as_u8() as usize];
        assert_eq!(
            kind,
            DeviceKind::Multi,
            "{dev} is not a multi-activity device"
        );
        if self.multis[i].current.contains(&label) {
            return Err(MultiActivityError::AlreadyPresent);
        }
        self.multis[i].current.push(label);
        Ok(())
    }

    /// Removes an activity from a multi-activity device
    /// (`MultiActivityDevice.remove`).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not a registered multi-activity device.
    pub fn multi_remove(
        &mut self,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Result<(), MultiActivityError> {
        let (kind, i) = self.index[dev.as_u8() as usize];
        assert_eq!(
            kind,
            DeviceKind::Multi,
            "{dev} is not a multi-activity device"
        );
        let pos = self.multis[i]
            .current
            .iter()
            .position(|l| *l == label)
            .ok_or(MultiActivityError::NotPresent)?;
        self.multis[i].current.remove(pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityId, NodeId};

    fn label(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    #[test]
    fn register_and_lookup() {
        let mut t = DeviceTable::new();
        let cpu = t.register_single("cpu");
        let timer = t.register_multi("timer_a");
        let radio = t.register_single("radio");
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind(cpu), DeviceKind::Single);
        assert_eq!(t.kind(timer), DeviceKind::Multi);
        assert_eq!(t.name(radio), "radio");
        assert_eq!(t.by_name("timer_a"), Some(timer));
        assert_eq!(t.by_name("nope"), None);
        assert_eq!(t.ids().count(), 3);
    }

    #[test]
    fn single_set_reports_previous_and_dedups() {
        let mut t = DeviceTable::new();
        let cpu = t.register_single("cpu");
        assert_eq!(t.single_get(cpu), ActivityLabel::IDLE);
        assert_eq!(t.single_set(cpu, label(3)), Some(ActivityLabel::IDLE));
        assert_eq!(t.single_set(cpu, label(3)), None);
        assert_eq!(t.single_set(cpu, label(4)), Some(label(3)));
        assert_eq!(t.single_get(cpu), label(4));
    }

    #[test]
    fn multi_add_remove() {
        let mut t = DeviceTable::new();
        let timer = t.register_multi("timer");
        assert!(t.multi_get(timer).is_empty());
        t.multi_add(timer, label(1)).unwrap();
        t.multi_add(timer, label(2)).unwrap();
        assert_eq!(
            t.multi_add(timer, label(1)),
            Err(MultiActivityError::AlreadyPresent)
        );
        assert_eq!(t.multi_get(timer), &[label(1), label(2)]);
        t.multi_remove(timer, label(1)).unwrap();
        assert_eq!(
            t.multi_remove(timer, label(1)),
            Err(MultiActivityError::NotPresent)
        );
        assert_eq!(t.multi_get(timer), &[label(2)]);
    }

    #[test]
    #[should_panic(expected = "not a single-activity device")]
    fn single_ops_on_multi_device_panic() {
        let mut t = DeviceTable::new();
        let timer = t.register_multi("timer");
        let _ = t.single_get(timer);
    }

    #[test]
    #[should_panic(expected = "not a multi-activity device")]
    fn multi_ops_on_single_device_panic() {
        let mut t = DeviceTable::new();
        let cpu = t.register_single("cpu");
        let _ = t.multi_add(cpu, label(1));
    }
}
