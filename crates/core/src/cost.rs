//! The cost model of Quanto itself (Table 4).
//!
//! Using Quanto is not free: each logged sample costs about 102 CPU cycles at
//! 1 MHz (41 cycles of call overhead, 19 to read the timer, 24 to read
//! iCount, 18 for everything else) and 12 bytes of RAM.  The simulator
//! charges these costs back to the instrumented node so that, like the
//! paper's `top`-style continuous mode, Quanto can account for its own
//! overhead.

use crate::log::ENTRY_SIZE_BYTES;

/// Per-sample cost parameters, straight from Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles of call overhead per logged sample.
    pub call_overhead_cycles: u32,
    /// Cycles to read the timer.
    pub read_timer_cycles: u32,
    /// Cycles to read the iCount register.
    pub read_icount_cycles: u32,
    /// Remaining cycles (buffer management, stores).
    pub other_cycles: u32,
    /// Bytes of RAM per sample.
    pub sample_bytes: u32,
    /// CPU clock frequency in Hz (1 MHz on the paper's platform).
    pub clock_hz: u64,
}

impl CostModel {
    /// The paper's measured costs: 102 cycles per sample at 1 MHz.
    pub const fn paper() -> Self {
        CostModel {
            call_overhead_cycles: 41,
            read_timer_cycles: 19,
            read_icount_cycles: 24,
            other_cycles: 18,
            sample_bytes: ENTRY_SIZE_BYTES as u32,
            clock_hz: 1_000_000,
        }
    }

    /// Total cycles per logged sample.
    pub const fn cycles_per_sample(&self) -> u32 {
        self.call_overhead_cycles
            + self.read_timer_cycles
            + self.read_icount_cycles
            + self.other_cycles
    }

    /// Time per logged sample in microseconds (fractional).
    pub fn micros_per_sample(&self) -> f64 {
        self.cycles_per_sample() as f64 * 1_000_000.0 / self.clock_hz as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// Accumulated overhead spent on Quanto's own bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostStats {
    /// Samples logged (synchronous part).
    pub samples: u64,
    /// Total CPU cycles spent logging.
    pub cycles: u64,
    /// Total bytes written to the RAM log.
    pub bytes: u64,
}

impl CostStats {
    /// Charges one logged sample.
    pub fn charge_sample(&mut self, model: &CostModel) {
        self.samples += 1;
        self.cycles += model.cycles_per_sample() as u64;
        self.bytes += model.sample_bytes as u64;
    }

    /// Total time spent logging, in microseconds.
    pub fn total_micros(&self, model: &CostModel) -> f64 {
        self.cycles as f64 * 1_000_000.0 / model.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_sum_to_102_cycles() {
        let m = CostModel::paper();
        assert_eq!(m.cycles_per_sample(), 102);
        assert_eq!(m.sample_bytes, 12);
        // At 1 MHz, 102 cycles is 102 us, matching the measured 101.7 us.
        assert!((m.micros_per_sample() - 102.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let m = CostModel::paper();
        let mut s = CostStats::default();
        for _ in 0..597 {
            s.charge_sample(&m);
        }
        assert_eq!(s.samples, 597);
        assert_eq!(s.cycles, 597 * 102);
        assert_eq!(s.bytes, 597 * 12);
        // 597 samples * 102 us ~= 60.9 ms, close to the paper's 60.71 ms for
        // the 48-second Blink run.
        let ms = s.total_micros(&m) / 1000.0;
        assert!((ms - 60.894).abs() < 1e-3, "logging time {ms} ms");
    }

    #[test]
    fn faster_clock_reduces_time_not_cycles() {
        let m = CostModel {
            clock_hz: 8_000_000,
            ..CostModel::paper()
        };
        assert_eq!(m.cycles_per_sample(), 102);
        assert!((m.micros_per_sample() - 12.75).abs() < 1e-9);
    }
}
