//! Power-state tracking: the `PowerState` / `PowerStateTrack` glue.
//!
//! Device drivers expose their hardware power states through a tiny
//! interface — `set(value)` and `setBits(mask, offset, value)` — and a shared
//! component deduplicates redundant notifications and tells the OS whenever a
//! state *actually* changes (Figures 1–3 in the paper).  The table here is
//! that shared component: it keeps the last-known state of every energy sink
//! and reports whether a driver call changed anything.

use hw_model::{Catalog, SinkId, StateIndex};

/// The raw power-state value a driver reports (the paper's `powerstate_t`).
///
/// For most sinks this is simply the [`StateIndex`] of the active state, but
/// drivers with richer internal state may pack bitfields via
/// [`PowerStateTable::set_bits`].
pub type PowerStateValue = u16;

/// Last-known power state of every sink, with idempotent updates.
#[derive(Debug, Clone)]
pub struct PowerStateTable {
    values: Vec<PowerStateValue>,
}

impl PowerStateTable {
    /// Creates a table for `catalog`, with every sink in its default state.
    pub fn new(catalog: &Catalog) -> Self {
        PowerStateTable {
            values: catalog
                .sinks()
                .map(|(_, s)| s.default_state.as_u8() as PowerStateValue)
                .collect(),
        }
    }

    /// Number of sinks tracked.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the table tracks no sinks.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current value for a sink.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn get(&self, sink: SinkId) -> PowerStateValue {
        self.values[sink.as_usize()]
    }

    /// The current value for a sink interpreted as a state index.
    pub fn get_state(&self, sink: SinkId) -> StateIndex {
        StateIndex(self.get(sink) as u8)
    }

    /// Sets the state of a sink (the `PowerState.set` command).
    ///
    /// Returns `Some(new_value)` if the value actually changed (the OS should
    /// log it), or `None` if the call was redundant — multiple calls signaling
    /// the same state are idempotent and do not notify the OS.
    pub fn set(&mut self, sink: SinkId, value: PowerStateValue) -> Option<PowerStateValue> {
        let slot = &mut self.values[sink.as_usize()];
        if *slot == value {
            None
        } else {
            *slot = value;
            Some(value)
        }
    }

    /// Sets only the bits selected by `mask << offset` (the `PowerState.setBits`
    /// command), leaving other bits untouched.
    ///
    /// Returns `Some(new_value)` if the stored value changed.
    pub fn set_bits(
        &mut self,
        sink: SinkId,
        mask: PowerStateValue,
        offset: u8,
        value: PowerStateValue,
    ) -> Option<PowerStateValue> {
        let cur = self.values[sink.as_usize()];
        let shifted_mask = mask << offset;
        let new = (cur & !shifted_mask) | ((value << offset) & shifted_mask);
        self.set(sink, new)
    }
}

/// Observer interface for power-state changes: the paper's `PowerStateTrack`.
///
/// The Quanto runtime notifies every registered listener after it has logged
/// a real change; accounting modules and tests hook in here.
pub trait PowerStateTrack {
    /// Called when a sink's power state actually changed.
    fn power_state_changed(&mut self, sink: SinkId, value: PowerStateValue);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::catalog::{blink_catalog, hydrowatch};

    #[test]
    fn table_starts_in_default_states() {
        let (cat, ids) = hydrowatch();
        let t = PowerStateTable::new(&cat);
        assert_eq!(t.len(), cat.sink_count());
        // CPU boots in LPM3 (index 1 in the hydrowatch catalog).
        assert_eq!(t.get(ids.cpu), 1);
        assert_eq!(t.get(ids.led0), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn set_is_idempotent() {
        let (cat, _cpu, leds) = blink_catalog();
        let mut t = PowerStateTable::new(&cat);
        assert_eq!(t.set(leds[0], 1), Some(1));
        // Signaling the same state again must not notify.
        assert_eq!(t.set(leds[0], 1), None);
        assert_eq!(t.set(leds[0], 0), Some(0));
        assert_eq!(t.get_state(leds[0]), StateIndex(0));
    }

    #[test]
    fn set_bits_updates_only_selected_bits() {
        let (cat, cpu, _leds) = blink_catalog();
        let mut t = PowerStateTable::new(&cat);
        t.set(cpu, 0b0000);
        // Set bits 2..3 (mask 0b11 at offset 2) to 0b10.
        assert_eq!(t.set_bits(cpu, 0b11, 2, 0b10), Some(0b1000));
        // Setting the low bits leaves the high bits alone.
        assert_eq!(t.set_bits(cpu, 0b11, 0, 0b01), Some(0b1001));
        // Redundant bit writes are idempotent.
        assert_eq!(t.set_bits(cpu, 0b11, 0, 0b01), None);
        assert_eq!(t.get(cpu), 0b1001);
    }
}
