//! The log-consumption seam.
//!
//! On the real platform the asynchronous half of Quanto's logging gets
//! entries *off the node* — over the UART, to flash, or to a host-side
//! collector — while the synchronous half keeps appending to the fixed RAM
//! buffer.  [`LogSink`] is that seam in the simulation: a chunk-wise consumer
//! of [`LogEntry`] slices.  The [`crate::logger::RamLogger`] pushes each
//! buffer's worth through the sink when the `Flush` overflow policy drains
//! it, and again at the end of a run, so a consumer that processes chunks
//! incrementally (the `analysis` crate's interval builders) holds memory
//! proportional to its *open* state, not to the total number of events.

use crate::log::{LogEncoding, LogEntry};

/// A chunk-wise consumer of log entries.
///
/// Chunks arrive in chronological log order; a sink sees every surviving
/// entry exactly once.  Chunk boundaries carry no meaning — they are whatever
/// the producer's buffer happened to hold — so implementations must not
/// assume alignment with any logical boundary (intervals, wraps, packets).
pub trait LogSink {
    /// Consumes one chunk of entries, in log order.
    fn accept(&mut self, chunk: &[LogEntry]);
}

/// Every `FnMut(&[LogEntry])` closure is a sink.
impl<F: FnMut(&[LogEntry])> LogSink for F {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self(chunk)
    }
}

/// A sink that concatenates every chunk into one `Vec` — the adapter from
/// the streaming world back to the batch world.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    entries: Vec<LogEntry>,
}

impl VecSink {
    /// An empty collector.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The entries collected so far.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Consumes the sink, returning everything it collected.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }
}

impl LogSink for VecSink {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self.entries.extend_from_slice(chunk);
    }
}

/// A sink that folds every entry's encoded bytes into a running FNV-1a
/// digest without retaining anything — the zero-materialization witness that
/// a stream of entries is byte-identical to another (two streams with equal
/// digests and equal counts saw the same encoded bytes in the same order).
///
/// Chunk boundaries do not affect the digest: only entry bytes are folded,
/// in order.  The digest is over the bytes of a specific wire format:
/// [`StreamDigest::new`] folds v1 bytes (what every pinned digest in the
/// repo uses); [`StreamDigest::with_encoding`] picks the format, which wide
/// fleets need since v1 cannot represent their entries.
#[derive(Debug, Clone, Copy)]
pub struct StreamDigest {
    hash: u64,
    entries: u64,
    encoding: LogEncoding,
}

impl StreamDigest {
    /// FNV-1a 64-bit offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh digest (no entries folded) over v1 entry bytes.
    pub fn new() -> Self {
        StreamDigest::with_encoding(LogEncoding::V1)
    }

    /// A fresh digest folding the given wire format's bytes.
    pub fn with_encoding(encoding: LogEncoding) -> Self {
        StreamDigest {
            hash: Self::OFFSET,
            entries: 0,
            encoding,
        }
    }

    /// The wire format whose bytes this digest folds.
    pub fn encoding(&self) -> LogEncoding {
        self.encoding
    }

    /// Folds one entry's encoded bytes.
    pub fn fold(&mut self, entry: &LogEntry) {
        let mut push = |b: u8| {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        };
        match self.encoding {
            LogEncoding::V1 => entry.encode().into_iter().for_each(&mut push),
            LogEncoding::V2 => entry.encode_v2().into_iter().for_each(&mut push),
        }
        self.entries += 1;
    }

    /// Folds a whole chunk in one pass: encodes every entry into `scratch`
    /// (cleared first, capacity retained across calls) and folds the
    /// concatenated bytes.  The digest is identical to calling
    /// [`StreamDigest::fold`] per entry — the same bytes in the same order —
    /// but a warm scratch buffer makes the steady-state path allocation-free
    /// and replaces per-entry array round-trips with one linear fold.
    pub fn fold_chunk(&mut self, chunk: &[LogEntry], scratch: &mut Vec<u8>) {
        scratch.clear();
        for entry in chunk {
            self.encoding.encode_entry(entry, scratch);
        }
        let mut hash = self.hash;
        for &b in scratch.iter() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.hash = hash;
        self.entries += chunk.len() as u64;
    }

    /// The digest over every entry folded so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// How many entries were folded.
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

impl Default for StreamDigest {
    fn default() -> Self {
        StreamDigest::new()
    }
}

impl LogSink for StreamDigest {
    fn accept(&mut self, chunk: &[LogEntry]) {
        for entry in chunk {
            self.fold(entry);
        }
    }
}

/// A sink that only counts — for instrumentation and tests that assert how
/// much data flowed without retaining it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    entries: u64,
    chunks: u64,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total entries seen.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total chunks seen.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }
}

impl LogSink for CountingSink {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self.entries += chunk.len() as u64;
        self.chunks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::{SimTime, SinkId};

    fn entry(i: u32) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(i as u64), i, SinkId(0), 1)
    }

    #[test]
    fn vec_sink_concatenates_chunks_in_order() {
        let mut sink = VecSink::new();
        sink.accept(&[entry(0), entry(1)]);
        sink.accept(&[]);
        sink.accept(&[entry(2)]);
        assert_eq!(sink.entries().len(), 3);
        let all = sink.into_entries();
        assert_eq!(all[0], entry(0));
        assert_eq!(all[2], entry(2));
    }

    #[test]
    fn counting_sink_counts_without_retaining() {
        let mut sink = CountingSink::new();
        sink.accept(&[entry(0), entry(1), entry(2)]);
        sink.accept(&[entry(3)]);
        assert_eq!(sink.entries(), 4);
        assert_eq!(sink.chunks(), 2);
    }

    #[test]
    fn stream_digest_is_chunking_independent_and_order_sensitive() {
        let mut whole = StreamDigest::new();
        whole.accept(&[entry(0), entry(1), entry(2), entry(3)]);
        let mut split = StreamDigest::new();
        split.accept(&[entry(0)]);
        split.accept(&[]);
        split.accept(&[entry(1), entry(2)]);
        split.accept(&[entry(3)]);
        assert_eq!(whole.digest(), split.digest());
        assert_eq!(whole.entries(), 4);
        assert_eq!(split.entries(), 4);
        let mut swapped = StreamDigest::new();
        swapped.accept(&[entry(1), entry(0), entry(2), entry(3)]);
        assert_ne!(whole.digest(), swapped.digest(), "order must matter");
        assert_ne!(StreamDigest::new().digest(), whole.digest());
    }

    #[test]
    fn stream_digest_encoding_selects_the_folded_bytes() {
        let entries = [entry(0), entry(1), entry(2)];
        let mut v1 = StreamDigest::new();
        let mut v2 = StreamDigest::with_encoding(LogEncoding::V2);
        v1.accept(&entries);
        v2.accept(&entries);
        assert_eq!(v1.encoding(), LogEncoding::V1);
        assert_eq!(v2.encoding(), LogEncoding::V2);
        assert_eq!(v1.entries(), v2.entries());
        // Different wire bytes, different digest.
        assert_ne!(v1.digest(), v2.digest());
        // The default constructor is the v1 digest the pins use.
        let mut explicit = StreamDigest::with_encoding(LogEncoding::V1);
        explicit.accept(&entries);
        assert_eq!(explicit.digest(), v1.digest());
    }

    #[test]
    fn fold_chunk_matches_per_entry_fold_for_both_encodings() {
        let entries: Vec<LogEntry> = (0..37).map(entry).collect();
        for encoding in [LogEncoding::V1, LogEncoding::V2] {
            let mut per_entry = StreamDigest::with_encoding(encoding);
            for e in &entries {
                per_entry.fold(e);
            }
            let mut chunked = StreamDigest::with_encoding(encoding);
            let mut scratch = Vec::new();
            chunked.fold_chunk(&entries[..5], &mut scratch);
            chunked.fold_chunk(&[], &mut scratch);
            chunked.fold_chunk(&entries[5..], &mut scratch);
            assert_eq!(per_entry.digest(), chunked.digest(), "{encoding:?}");
            assert_eq!(per_entry.entries(), chunked.entries());
        }
    }

    #[test]
    fn fold_chunk_reuses_scratch_capacity() {
        let entries: Vec<LogEntry> = (0..8).map(entry).collect();
        let mut d = StreamDigest::new();
        let mut scratch = Vec::new();
        d.fold_chunk(&entries, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= entries.len() * crate::log::ENTRY_SIZE_BYTES);
        d.fold_chunk(&entries, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "warm scratch must not regrow");
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0usize;
        {
            let mut f = |chunk: &[LogEntry]| seen += chunk.len();
            let sink: &mut dyn LogSink = &mut f;
            sink.accept(&[entry(0), entry(1)]);
        }
        assert_eq!(seen, 2);
    }
}
