//! The log-consumption seam.
//!
//! On the real platform the asynchronous half of Quanto's logging gets
//! entries *off the node* — over the UART, to flash, or to a host-side
//! collector — while the synchronous half keeps appending to the fixed RAM
//! buffer.  [`LogSink`] is that seam in the simulation: a chunk-wise consumer
//! of [`LogEntry`] slices.  The [`crate::logger::RamLogger`] pushes each
//! buffer's worth through the sink when the `Flush` overflow policy drains
//! it, and again at the end of a run, so a consumer that processes chunks
//! incrementally (the `analysis` crate's interval builders) holds memory
//! proportional to its *open* state, not to the total number of events.

use crate::log::LogEntry;

/// A chunk-wise consumer of log entries.
///
/// Chunks arrive in chronological log order; a sink sees every surviving
/// entry exactly once.  Chunk boundaries carry no meaning — they are whatever
/// the producer's buffer happened to hold — so implementations must not
/// assume alignment with any logical boundary (intervals, wraps, packets).
pub trait LogSink {
    /// Consumes one chunk of entries, in log order.
    fn accept(&mut self, chunk: &[LogEntry]);
}

/// Every `FnMut(&[LogEntry])` closure is a sink.
impl<F: FnMut(&[LogEntry])> LogSink for F {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self(chunk)
    }
}

/// A sink that concatenates every chunk into one `Vec` — the adapter from
/// the streaming world back to the batch world.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    entries: Vec<LogEntry>,
}

impl VecSink {
    /// An empty collector.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The entries collected so far.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Consumes the sink, returning everything it collected.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }
}

impl LogSink for VecSink {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self.entries.extend_from_slice(chunk);
    }
}

/// A sink that only counts — for instrumentation and tests that assert how
/// much data flowed without retaining it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    entries: u64,
    chunks: u64,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total entries seen.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total chunks seen.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }
}

impl LogSink for CountingSink {
    fn accept(&mut self, chunk: &[LogEntry]) {
        self.entries += chunk.len() as u64;
        self.chunks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::{SimTime, SinkId};

    fn entry(i: u32) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(i as u64), i, SinkId(0), 1)
    }

    #[test]
    fn vec_sink_concatenates_chunks_in_order() {
        let mut sink = VecSink::new();
        sink.accept(&[entry(0), entry(1)]);
        sink.accept(&[]);
        sink.accept(&[entry(2)]);
        assert_eq!(sink.entries().len(), 3);
        let all = sink.into_entries();
        assert_eq!(all[0], entry(0));
        assert_eq!(all[2], entry(2));
    }

    #[test]
    fn counting_sink_counts_without_retaining() {
        let mut sink = CountingSink::new();
        sink.accept(&[entry(0), entry(1), entry(2)]);
        sink.accept(&[entry(3)]);
        assert_eq!(sink.entries(), 4);
        assert_eq!(sink.chunks(), 2);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0usize;
        {
            let mut f = |chunk: &[LogEntry]| seen += chunk.len();
            let sink: &mut dyn LogSink = &mut f;
            sink.accept(&[entry(0), entry(1)]);
        }
        assert_eq!(seen, 2);
    }
}
