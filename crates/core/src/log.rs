//! The Quanto event log entry.
//!
//! Every power-state change and every activity change produces one 12-byte
//! entry (Figure 17 in the paper):
//!
//! ```text
//! typedef struct entry_t {
//!     uint8_t  type;    // type of the entry
//!     uint8_t  res_id;  // hardware resource for entry
//!     uint32_t time;    // local time of the node
//!     uint32_t ic;      // icount: cumulative energy
//!     union {
//!         uint16_t act;         // for ctx changes
//!         uint16_t powerstate;  // for powerstate changes
//!     };
//! } entry_t;
//! ```
//!
//! We keep exactly that layout — one type byte, one resource byte, a 32-bit
//! local timestamp in microseconds (which wraps, as on the real hardware),
//! the 32-bit iCount reading and a 16-bit payload.

use crate::activity::ActivityLabel;
use crate::device::DeviceId;
use crate::power_state::PowerStateValue;
use hw_model::{SimTime, SinkId};
use std::fmt;

/// Size of one encoded log entry, in bytes.
pub const ENTRY_SIZE_BYTES: usize = 12;

/// What a log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// An energy sink changed power state; `res_id` is the sink id and the
    /// payload is the new `powerstate_t` value.
    PowerState,
    /// A single-activity device changed activity; the payload is the new
    /// activity label.
    ActivityChange,
    /// A single-activity device *bound* its previous (proxy) activity to a
    /// real activity; the payload is the real label.  Resource usage since
    /// the proxy activity started is charged to the bound activity.
    ActivityBind,
    /// A multi-activity device added an activity to its set.
    MultiAdd,
    /// A multi-activity device removed an activity from its set.
    MultiRemove,
}

impl EntryKind {
    /// The on-wire type byte.
    pub const fn as_u8(self) -> u8 {
        match self {
            EntryKind::PowerState => 0,
            EntryKind::ActivityChange => 1,
            EntryKind::ActivityBind => 2,
            EntryKind::MultiAdd => 3,
            EntryKind::MultiRemove => 4,
        }
    }

    /// Decodes a type byte.
    pub const fn from_u8(v: u8) -> Option<EntryKind> {
        match v {
            0 => Some(EntryKind::PowerState),
            1 => Some(EntryKind::ActivityChange),
            2 => Some(EntryKind::ActivityBind),
            3 => Some(EntryKind::MultiAdd),
            4 => Some(EntryKind::MultiRemove),
            _ => None,
        }
    }
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryKind::PowerState => "pwr",
            EntryKind::ActivityChange => "act",
            EntryKind::ActivityBind => "bind",
            EntryKind::MultiAdd => "add",
            EntryKind::MultiRemove => "rm",
        };
        f.write_str(s)
    }
}

/// One 12-byte Quanto log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// What happened.
    pub kind: EntryKind,
    /// The sink (for power-state entries) or device (for activity entries).
    pub res_id: u8,
    /// Local node time in microseconds, truncated to 32 bits (wraps after
    /// about 71.6 minutes, like the real platform's timer).
    pub time_us: u32,
    /// Cumulative iCount reading at the moment of the event.
    pub icount: u32,
    /// New power-state value or encoded activity label.
    pub value: u16,
}

impl LogEntry {
    /// Builds a power-state entry.
    pub fn power_state(time: SimTime, icount: u32, sink: SinkId, value: PowerStateValue) -> Self {
        LogEntry {
            kind: EntryKind::PowerState,
            res_id: sink.0 as u8,
            time_us: (time.as_micros() & 0xFFFF_FFFF) as u32,
            icount,
            value,
        }
    }

    /// Builds an activity entry of the given kind.
    pub fn activity(
        kind: EntryKind,
        time: SimTime,
        icount: u32,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Self {
        debug_assert!(kind != EntryKind::PowerState);
        LogEntry {
            kind,
            res_id: dev.as_u8(),
            time_us: (time.as_micros() & 0xFFFF_FFFF) as u32,
            icount,
            value: label.encode(),
        }
    }

    /// The sink id, when this is a power-state entry.
    pub fn sink(&self) -> Option<SinkId> {
        (self.kind == EntryKind::PowerState).then_some(SinkId(self.res_id as u16))
    }

    /// The device id, when this is an activity entry.
    pub fn device(&self) -> Option<DeviceId> {
        (self.kind != EntryKind::PowerState).then_some(DeviceId(self.res_id))
    }

    /// The activity label, when this is an activity entry.
    pub fn label(&self) -> Option<ActivityLabel> {
        (self.kind != EntryKind::PowerState).then(|| ActivityLabel::decode(self.value))
    }

    /// Encodes the entry into its 12-byte wire format (little-endian fields,
    /// matching the MSP430's byte order).
    pub fn encode(&self) -> [u8; ENTRY_SIZE_BYTES] {
        let mut out = [0u8; ENTRY_SIZE_BYTES];
        out[0] = self.kind.as_u8();
        out[1] = self.res_id;
        out[2..6].copy_from_slice(&self.time_us.to_le_bytes());
        out[6..10].copy_from_slice(&self.icount.to_le_bytes());
        out[10..12].copy_from_slice(&self.value.to_le_bytes());
        out
    }

    /// Decodes an entry from its 12-byte wire format.
    ///
    /// Returns `None` if the type byte is unknown.
    pub fn decode(bytes: &[u8; ENTRY_SIZE_BYTES]) -> Option<Self> {
        let kind = EntryKind::from_u8(bytes[0])?;
        Some(LogEntry {
            kind,
            res_id: bytes[1],
            time_us: u32::from_le_bytes(bytes[2..6].try_into().expect("slice length")),
            icount: u32::from_le_bytes(bytes[6..10].try_into().expect("slice length")),
            value: u16::from_le_bytes(bytes[10..12].try_into().expect("slice length")),
        })
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10} us | ic {:>8}] {} res={} val=0x{:04x}",
            self.time_us, self.icount, self.kind, self.res_id, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityId, NodeId};

    #[test]
    fn entry_is_twelve_bytes() {
        assert_eq!(ENTRY_SIZE_BYTES, 12);
        let e = LogEntry::power_state(SimTime::from_millis(5), 17, SinkId(3), 1);
        assert_eq!(e.encode().len(), 12);
    }

    #[test]
    fn encode_decode_round_trip() {
        let cases = vec![
            LogEntry::power_state(SimTime::from_micros(123_456), 789, SinkId(5), 2),
            LogEntry::activity(
                EntryKind::ActivityChange,
                SimTime::from_secs(40),
                99_999,
                DeviceId(0),
                ActivityLabel::new(NodeId(4), ActivityId(7)),
            ),
            LogEntry::activity(
                EntryKind::ActivityBind,
                SimTime::ZERO,
                0,
                DeviceId(255),
                ActivityLabel::IDLE,
            ),
            LogEntry::activity(
                EntryKind::MultiAdd,
                SimTime::from_micros(u64::MAX),
                u32::MAX,
                DeviceId(9),
                ActivityLabel::new(NodeId(255), ActivityId(255)),
            ),
        ];
        for e in cases {
            let decoded = LogEntry::decode(&e.encode()).unwrap();
            assert_eq!(decoded, e);
        }
    }

    #[test]
    fn unknown_type_byte_rejected() {
        let mut bytes = [0u8; ENTRY_SIZE_BYTES];
        bytes[0] = 200;
        assert!(LogEntry::decode(&bytes).is_none());
    }

    #[test]
    fn timestamp_wraps_at_32_bits() {
        // ~71.6 minutes in microseconds exceeds u32::MAX.
        let t = SimTime::from_micros(u32::MAX as u64 + 5);
        let e = LogEntry::power_state(t, 0, SinkId(0), 0);
        assert_eq!(e.time_us, 4);
    }

    #[test]
    fn accessors_depend_on_kind() {
        let p = LogEntry::power_state(SimTime::ZERO, 0, SinkId(7), 3);
        assert_eq!(p.sink(), Some(SinkId(7)));
        assert_eq!(p.device(), None);
        assert_eq!(p.label(), None);

        let lbl = ActivityLabel::new(NodeId(1), ActivityId(9));
        let a = LogEntry::activity(
            EntryKind::ActivityChange,
            SimTime::ZERO,
            0,
            DeviceId(2),
            lbl,
        );
        assert_eq!(a.sink(), None);
        assert_eq!(a.device(), Some(DeviceId(2)));
        assert_eq!(a.label(), Some(lbl));
    }

    #[test]
    fn kind_round_trips() {
        for k in [
            EntryKind::PowerState,
            EntryKind::ActivityChange,
            EntryKind::ActivityBind,
            EntryKind::MultiAdd,
            EntryKind::MultiRemove,
        ] {
            assert_eq!(EntryKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(EntryKind::from_u8(5), None);
    }
}
