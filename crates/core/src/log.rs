//! The Quanto event log entry.
//!
//! Every power-state change and every activity change produces one 12-byte
//! entry (Figure 17 in the paper):
//!
//! ```text
//! typedef struct entry_t {
//!     uint8_t  type;    // type of the entry
//!     uint8_t  res_id;  // hardware resource for entry
//!     uint32_t time;    // local time of the node
//!     uint32_t ic;      // icount: cumulative energy
//!     union {
//!         uint16_t act;         // for ctx changes
//!         uint16_t powerstate;  // for powerstate changes
//!     };
//! } entry_t;
//! ```
//!
//! The paper's layout is the **v1** encoding: one type byte, one resource
//! byte, a 32-bit local timestamp in microseconds (which wraps, as on the
//! real hardware), the 32-bit iCount reading and a 16-bit payload.  Every
//! pinned digest in the repo is over v1 bytes, so v1 stays byte-identical
//! forever.
//!
//! v1's one-byte activity origin caps fleets at 254 nodes and its 16-bit
//! payload cannot carry a widened label, so there is also a **v2** encoding:
//! 18 bytes with a full 64-bit timestamp and a 32-bit payload.  The version
//! lives in the type system ([`LogVersion`], with [`V1`]/[`V2`] marker
//! types) following Theseus's intralingual-design principle — code that
//! folds or parses entries is generic over the version instead of branching
//! on magic bytes; [`LogEncoding`] is the runtime-selected counterpart for
//! paths (digests, sweep configs) where the version is data.
//!
//! The in-memory [`LogEntry`] is wide (64-bit time, 32-bit value) and
//! version-agnostic; encoding to v1 truncates exactly the way the real
//! MSP430 hardware did.

use crate::activity::ActivityLabel;
use crate::device::DeviceId;
use crate::power_state::PowerStateValue;
use hw_model::{SimTime, SinkId};
use std::fmt;

/// Size of one encoded v1 (paper-format) log entry, in bytes.
pub const ENTRY_SIZE_BYTES: usize = 12;

/// Size of one encoded v2 (widened) log entry, in bytes.
pub const ENTRY_SIZE_BYTES_V2: usize = 18;

/// What a log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// An energy sink changed power state; `res_id` is the sink id and the
    /// payload is the new `powerstate_t` value.
    PowerState,
    /// A single-activity device changed activity; the payload is the new
    /// activity label.
    ActivityChange,
    /// A single-activity device *bound* its previous (proxy) activity to a
    /// real activity; the payload is the real label.  Resource usage since
    /// the proxy activity started is charged to the bound activity.
    ActivityBind,
    /// A multi-activity device added an activity to its set.
    MultiAdd,
    /// A multi-activity device removed an activity from its set.
    MultiRemove,
}

impl EntryKind {
    /// The on-wire type byte.
    pub const fn as_u8(self) -> u8 {
        match self {
            EntryKind::PowerState => 0,
            EntryKind::ActivityChange => 1,
            EntryKind::ActivityBind => 2,
            EntryKind::MultiAdd => 3,
            EntryKind::MultiRemove => 4,
        }
    }

    /// Decodes a type byte.
    pub const fn from_u8(v: u8) -> Option<EntryKind> {
        match v {
            0 => Some(EntryKind::PowerState),
            1 => Some(EntryKind::ActivityChange),
            2 => Some(EntryKind::ActivityBind),
            3 => Some(EntryKind::MultiAdd),
            4 => Some(EntryKind::MultiRemove),
            _ => None,
        }
    }
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryKind::PowerState => "pwr",
            EntryKind::ActivityChange => "act",
            EntryKind::ActivityBind => "bind",
            EntryKind::MultiAdd => "add",
            EntryKind::MultiRemove => "rm",
        };
        f.write_str(s)
    }
}

/// One Quanto log entry, in its wide in-memory form.
///
/// Encoding to the 12-byte v1 format truncates the timestamp to 32 bits
/// (wrapping after ~71.6 minutes, like the real platform's timer) and the
/// value to 16 bits; the 18-byte v2 format carries both fields whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// What happened.
    pub kind: EntryKind,
    /// The sink (for power-state entries) or device (for activity entries).
    pub res_id: u8,
    /// Local node time in microseconds (absolute; v1 encoding wraps it to
    /// 32 bits).
    pub time_us: u64,
    /// Cumulative iCount reading at the moment of the event.
    pub icount: u32,
    /// New power-state value or encoded activity label (v1 encoding keeps
    /// the low 16 bits).
    pub value: u32,
}

impl LogEntry {
    /// Builds a power-state entry.
    pub fn power_state(time: SimTime, icount: u32, sink: SinkId, value: PowerStateValue) -> Self {
        LogEntry {
            kind: EntryKind::PowerState,
            res_id: sink.0 as u8,
            time_us: time.as_micros(),
            icount,
            value: value as u32,
        }
    }

    /// Builds an activity entry of the given kind.
    pub fn activity(
        kind: EntryKind,
        time: SimTime,
        icount: u32,
        dev: DeviceId,
        label: ActivityLabel,
    ) -> Self {
        debug_assert!(kind != EntryKind::PowerState);
        LogEntry {
            kind,
            res_id: dev.as_u8(),
            time_us: time.as_micros(),
            icount,
            value: label.encode(),
        }
    }

    /// The sink id, when this is a power-state entry.
    pub fn sink(&self) -> Option<SinkId> {
        (self.kind == EntryKind::PowerState).then_some(SinkId(self.res_id as u16))
    }

    /// The device id, when this is an activity entry.
    pub fn device(&self) -> Option<DeviceId> {
        (self.kind != EntryKind::PowerState).then_some(DeviceId(self.res_id))
    }

    /// The activity label, when this is an activity entry.
    pub fn label(&self) -> Option<ActivityLabel> {
        (self.kind != EntryKind::PowerState).then(|| ActivityLabel::decode(self.value))
    }

    /// Encodes the entry into the 12-byte v1 wire format (little-endian
    /// fields, matching the MSP430's byte order).  The timestamp wraps to
    /// 32 bits and the value truncates to 16 bits, exactly as on the real
    /// hardware — use [`fits_v1`](Self::fits_v1) to check the value is
    /// representable.
    pub fn encode(&self) -> [u8; ENTRY_SIZE_BYTES] {
        let mut out = [0u8; ENTRY_SIZE_BYTES];
        out[0] = self.kind.as_u8();
        out[1] = self.res_id;
        out[2..6].copy_from_slice(&(self.time_us as u32).to_le_bytes());
        out[6..10].copy_from_slice(&self.icount.to_le_bytes());
        out[10..12].copy_from_slice(&(self.value as u16).to_le_bytes());
        out
    }

    /// Decodes an entry from its 12-byte v1 wire format.
    ///
    /// Returns `None` if the type byte is unknown.
    pub fn decode(bytes: &[u8; ENTRY_SIZE_BYTES]) -> Option<Self> {
        let kind = EntryKind::from_u8(bytes[0])?;
        Some(LogEntry {
            kind,
            res_id: bytes[1],
            time_us: u32::from_le_bytes(bytes[2..6].try_into().expect("slice length")) as u64,
            icount: u32::from_le_bytes(bytes[6..10].try_into().expect("slice length")),
            value: u16::from_le_bytes(bytes[10..12].try_into().expect("slice length")) as u32,
        })
    }

    /// Whether the v1 encoding represents this entry's value without loss.
    /// (A wrapped timestamp is *not* loss: wrapping is the defined v1
    /// behaviour, and the analysis pipeline unwraps it.)
    pub fn fits_v1(&self) -> bool {
        self.value <= u16::MAX as u32
    }

    /// Encodes the entry into the 18-byte v2 wire format: the same leading
    /// type and resource bytes, then the full 64-bit timestamp, the 32-bit
    /// iCount and the full 32-bit value, all little-endian.
    pub fn encode_v2(&self) -> [u8; ENTRY_SIZE_BYTES_V2] {
        let mut out = [0u8; ENTRY_SIZE_BYTES_V2];
        out[0] = self.kind.as_u8();
        out[1] = self.res_id;
        out[2..10].copy_from_slice(&self.time_us.to_le_bytes());
        out[10..14].copy_from_slice(&self.icount.to_le_bytes());
        out[14..18].copy_from_slice(&self.value.to_le_bytes());
        out
    }

    /// Decodes an entry from its 18-byte v2 wire format.
    ///
    /// Returns `None` if the type byte is unknown.
    pub fn decode_v2(bytes: &[u8; ENTRY_SIZE_BYTES_V2]) -> Option<Self> {
        let kind = EntryKind::from_u8(bytes[0])?;
        Some(LogEntry {
            kind,
            res_id: bytes[1],
            time_us: u64::from_le_bytes(bytes[2..10].try_into().expect("slice length")),
            icount: u32::from_le_bytes(bytes[10..14].try_into().expect("slice length")),
            value: u32::from_le_bytes(bytes[14..18].try_into().expect("slice length")),
        })
    }
}

mod sealed {
    /// Seals [`super::LogVersion`]: the set of wire formats is closed.
    pub trait Sealed {}
    impl Sealed for super::V1 {}
    impl Sealed for super::V2 {}
}

/// A log-entry wire format, as a type.
///
/// Code that serializes or digests entries can be generic over the version
/// (`fn fold<V: LogVersion>(..)`) so the format choice is checked at compile
/// time rather than branched on at runtime — Theseus's intralingual-design
/// principle applied to the log.  The trait is sealed: [`V1`] and [`V2`] are
/// the only versions.
pub trait LogVersion: sealed::Sealed {
    /// Encoded entry size in bytes.
    const SIZE: usize;
    /// The runtime tag for this version.
    const ENCODING: LogEncoding;

    /// Whether this version represents the entry's value without loss.
    fn fits(entry: &LogEntry) -> bool;

    /// Encodes `entry` into `out`, which must be exactly `SIZE` bytes.
    fn encode_into(entry: &LogEntry, out: &mut [u8]);

    /// Decodes an entry from exactly `SIZE` bytes; `None` on a bad type
    /// byte.
    fn decode(bytes: &[u8]) -> Option<LogEntry>;
}

/// The paper's 12-byte format (one-byte activity origins, wrapping 32-bit
/// timestamps).  Byte-identical to the pre-versioned encoding: every pinned
/// digest is over these bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V1;

/// The widened 18-byte format (64-bit timestamps, 32-bit values carrying
/// widened activity labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V2;

impl LogVersion for V1 {
    const SIZE: usize = ENTRY_SIZE_BYTES;
    const ENCODING: LogEncoding = LogEncoding::V1;

    fn fits(entry: &LogEntry) -> bool {
        entry.fits_v1()
    }

    fn encode_into(entry: &LogEntry, out: &mut [u8]) {
        out.copy_from_slice(&entry.encode());
    }

    fn decode(bytes: &[u8]) -> Option<LogEntry> {
        LogEntry::decode(bytes.try_into().ok()?)
    }
}

impl LogVersion for V2 {
    const SIZE: usize = ENTRY_SIZE_BYTES_V2;
    const ENCODING: LogEncoding = LogEncoding::V2;

    fn fits(_entry: &LogEntry) -> bool {
        true
    }

    fn encode_into(entry: &LogEntry, out: &mut [u8]) {
        out.copy_from_slice(&entry.encode_v2());
    }

    fn decode(bytes: &[u8]) -> Option<LogEntry> {
        LogEntry::decode_v2(bytes.try_into().ok()?)
    }
}

/// Runtime selection of a log wire format, for paths where the version is
/// data (scenario configs, stream digests) rather than a type parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogEncoding {
    /// The paper's 12-byte format; the default, and what every pinned digest
    /// uses.
    #[default]
    V1,
    /// The widened 18-byte format for fleets beyond 254 nodes.
    V2,
}

impl LogEncoding {
    /// Encoded entry size in bytes.
    pub const fn entry_size(self) -> usize {
        match self {
            LogEncoding::V1 => ENTRY_SIZE_BYTES,
            LogEncoding::V2 => ENTRY_SIZE_BYTES_V2,
        }
    }

    /// Whether this encoding represents the entry's value without loss.
    pub fn fits(self, entry: &LogEntry) -> bool {
        match self {
            LogEncoding::V1 => V1::fits(entry),
            LogEncoding::V2 => V2::fits(entry),
        }
    }

    /// Encodes one entry, appending its bytes to `out`.
    pub fn encode_entry(self, entry: &LogEntry, out: &mut Vec<u8>) {
        debug_assert!(
            self.fits(entry),
            "value 0x{:x} does not fit {self:?}",
            entry.value
        );
        match self {
            LogEncoding::V1 => out.extend_from_slice(&entry.encode()),
            LogEncoding::V2 => out.extend_from_slice(&entry.encode_v2()),
        }
    }

    /// The minimal encoding for a fleet whose node ids include `max_id`:
    /// v1 while every origin fits one byte, v2 beyond.
    pub fn required_for(max_id: crate::activity::NodeId) -> LogEncoding {
        if max_id.fits_v1() {
            LogEncoding::V1
        } else {
            LogEncoding::V2
        }
    }
}

impl fmt::Display for LogEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogEncoding::V1 => f.write_str("v1"),
            LogEncoding::V2 => f.write_str("v2"),
        }
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10} us | ic {:>8}] {} res={} val=0x{:04x}",
            self.time_us, self.icount, self.kind, self.res_id, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityId, NodeId};

    #[test]
    fn entry_is_twelve_bytes() {
        assert_eq!(ENTRY_SIZE_BYTES, 12);
        let e = LogEntry::power_state(SimTime::from_millis(5), 17, SinkId(3), 1);
        assert_eq!(e.encode().len(), 12);
    }

    #[test]
    fn encode_decode_round_trip() {
        let cases = vec![
            LogEntry::power_state(SimTime::from_micros(123_456), 789, SinkId(5), 2),
            LogEntry::activity(
                EntryKind::ActivityChange,
                SimTime::from_secs(40),
                99_999,
                DeviceId(0),
                ActivityLabel::new(NodeId(4), ActivityId(7)),
            ),
            LogEntry::activity(
                EntryKind::ActivityBind,
                SimTime::ZERO,
                0,
                DeviceId(255),
                ActivityLabel::IDLE,
            ),
            LogEntry::activity(
                EntryKind::MultiAdd,
                SimTime::from_micros(u32::MAX as u64),
                u32::MAX,
                DeviceId(9),
                ActivityLabel::new(NodeId(255), ActivityId(255)),
            ),
        ];
        for e in cases {
            assert!(e.fits_v1());
            let decoded = LogEntry::decode(&e.encode()).unwrap();
            assert_eq!(decoded, e);
            // v2 round-trips the same entries too.
            assert_eq!(LogEntry::decode_v2(&e.encode_v2()).unwrap(), e);
        }
    }

    #[test]
    fn v2_round_trips_what_v1_cannot() {
        let wide = LogEntry::activity(
            EntryKind::MultiAdd,
            SimTime::from_micros(u64::MAX),
            u32::MAX,
            DeviceId(9),
            ActivityLabel::new(NodeId(70_000), ActivityId(255)),
        );
        assert!(!wide.fits_v1());
        assert_eq!(LogEntry::decode_v2(&wide.encode_v2()).unwrap(), wide);
        // The v1 bytes of the same entry truncate: time wraps, value keeps
        // its low 16 bits.
        let narrowed = LogEntry::decode(&wide.encode()).unwrap();
        assert_eq!(narrowed.time_us, wide.time_us & 0xFFFF_FFFF);
        assert_eq!(narrowed.value, wide.value & 0xFFFF);
    }

    #[test]
    fn log_version_types_match_runtime_encoding() {
        fn encode_with<V: LogVersion>(e: &LogEntry) -> Vec<u8> {
            let mut out = vec![0u8; V::SIZE];
            V::encode_into(e, &mut out);
            out
        }
        let e = LogEntry::power_state(SimTime::from_millis(7), 42, SinkId(1), 3);
        assert_eq!(encode_with::<V1>(&e), e.encode().to_vec());
        assert_eq!(encode_with::<V2>(&e), e.encode_v2().to_vec());
        assert_eq!(V1::decode(&e.encode()), Some(e));
        assert_eq!(V2::decode(&e.encode_v2()), Some(e));
        assert_eq!(V1::ENCODING.entry_size(), ENTRY_SIZE_BYTES);
        assert_eq!(V2::ENCODING.entry_size(), ENTRY_SIZE_BYTES_V2);

        let mut buf = Vec::new();
        LogEncoding::V1.encode_entry(&e, &mut buf);
        LogEncoding::V2.encode_entry(&e, &mut buf);
        assert_eq!(buf.len(), ENTRY_SIZE_BYTES + ENTRY_SIZE_BYTES_V2);
        assert_eq!(&buf[..ENTRY_SIZE_BYTES], &e.encode());
        assert_eq!(&buf[ENTRY_SIZE_BYTES..], &e.encode_v2());
    }

    #[test]
    fn required_encoding_tracks_the_v1_cap() {
        assert_eq!(LogEncoding::required_for(NodeId(1)), LogEncoding::V1);
        assert_eq!(LogEncoding::required_for(NodeId(254)), LogEncoding::V1);
        assert_eq!(LogEncoding::required_for(NodeId(255)), LogEncoding::V2);
        assert_eq!(LogEncoding::required_for(NodeId(10_000)), LogEncoding::V2);
        assert_eq!(LogEncoding::default(), LogEncoding::V1);
        assert_eq!(format!("{}/{}", LogEncoding::V1, LogEncoding::V2), "v1/v2");
    }

    #[test]
    fn unknown_type_byte_rejected() {
        let mut bytes = [0u8; ENTRY_SIZE_BYTES];
        bytes[0] = 200;
        assert!(LogEntry::decode(&bytes).is_none());
    }

    #[test]
    fn v1_timestamp_wraps_at_32_bits() {
        // ~71.6 minutes in microseconds exceeds u32::MAX.  The in-memory
        // entry keeps the absolute time; the v1 *encoding* wraps it exactly
        // like the real platform's 32-bit timer, and v2 carries it whole.
        let t = SimTime::from_micros(u32::MAX as u64 + 5);
        let e = LogEntry::power_state(t, 0, SinkId(0), 0);
        assert_eq!(e.time_us, u32::MAX as u64 + 5);
        let v1 = LogEntry::decode(&e.encode()).unwrap();
        assert_eq!(v1.time_us, 4);
        let v2 = LogEntry::decode_v2(&e.encode_v2()).unwrap();
        assert_eq!(v2.time_us, u32::MAX as u64 + 5);
    }

    #[test]
    fn accessors_depend_on_kind() {
        let p = LogEntry::power_state(SimTime::ZERO, 0, SinkId(7), 3);
        assert_eq!(p.sink(), Some(SinkId(7)));
        assert_eq!(p.device(), None);
        assert_eq!(p.label(), None);

        let lbl = ActivityLabel::new(NodeId(1), ActivityId(9));
        let a = LogEntry::activity(
            EntryKind::ActivityChange,
            SimTime::ZERO,
            0,
            DeviceId(2),
            lbl,
        );
        assert_eq!(a.sink(), None);
        assert_eq!(a.device(), Some(DeviceId(2)));
        assert_eq!(a.label(), Some(lbl));
    }

    #[test]
    fn kind_round_trips() {
        for k in [
            EntryKind::PowerState,
            EntryKind::ActivityChange,
            EntryKind::ActivityBind,
            EntryKind::MultiAdd,
            EntryKind::MultiRemove,
        ] {
            assert_eq!(EntryKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(EntryKind::from_u8(5), None);
    }
}
