//! Activity labels: Quanto's resource principal.
//!
//! Following Rialto and Resource Containers, an *activity* is "the
//! abstraction to which resources are allocated and to which resource usage
//! is charged" — a logical set of operations whose resource consumption
//! should be grouped together, independent of threads, processes or hardware
//! components.  Quanto represents an activity by a label `<origin node : id>`
//! encoded in 16 bits so that it can ride inside every radio packet, which
//! supports networks of up to 256 nodes with 256 distinct activity ids.
//!
//! The paper's 16-bit label (one byte of origin, one of id) is the **v1**
//! wire format and caps fleets at 254 usable node ids.  [`NodeId`] itself is
//! 32 bits wide: labels whose origin fits in one byte encode exactly as
//! before (every pinned v1 digest holds), while wider origins use the
//! widened label encoding carried by the v2 log-entry format (see
//! [`crate::log`]).

use std::fmt;

/// Identifier of a node in the network (the `origin node` half of a label).
///
/// Ids are 32 bits wide in memory.  The v1 (paper) log encoding packs the
/// origin into one byte, so v1 scenarios use ids `1..=254`; the v2 encoding
/// carries the full id, capped at [`NodeId::MAX_LABEL_ORIGIN`] so a widened
/// label still fits 32 bits alongside its 8-bit activity id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The broadcast destination (all nodes).  Deliberately outside the
    /// valid origin range under every encoding: v1 reserved the one-byte
    /// sentinel `0xFF`, which a widened fleet would collide with, so the
    /// widened sentinel is the all-ones id no real node may use.
    pub const BROADCAST: NodeId = NodeId(u32::MAX);

    /// The largest id that can originate an activity label: the widened
    /// label packs `(origin << 8) | activity` into 32 bits, leaving 24 bits
    /// of origin.
    pub const MAX_LABEL_ORIGIN: u32 = (1 << 24) - 1;

    /// The largest id the one-byte v1 log encoding can carry (`0xFF` being
    /// the historical broadcast sentinel, and 0 the idle origin).
    pub const MAX_V1: u32 = 254;

    /// Returns the raw id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw id, zero-extended (for seed derivations and hashing).
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// Whether the one-byte v1 origin encoding can represent this id.
    pub const fn fits_v1(self) -> bool {
        self.0 <= NodeId::MAX_V1
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Node-local activity identifier (the `id` half of a label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ActivityId(pub u8);

impl ActivityId {
    /// The reserved "idle / no activity" id.
    pub const IDLE: ActivityId = ActivityId(0);

    /// Returns the raw id.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An activity label `<origin node : id>`.
///
/// On the wire and in the log a label is an integer with the origin above the
/// 8-bit activity id.  Origins `0..=255` produce the paper's 16-bit value
/// (the v1 log format carries only those 16 bits); wider origins — up to
/// [`NodeId::MAX_LABEL_ORIGIN`] — use the upper bits of the 32-bit encoding,
/// which only the v2 log format can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ActivityLabel {
    /// The node where the activity originated.
    pub origin: NodeId,
    /// The node-local activity id.
    pub id: ActivityId,
}

impl ActivityLabel {
    /// The distinguished idle label (node 0, id 0).
    pub const IDLE: ActivityLabel = ActivityLabel {
        origin: NodeId(0),
        id: ActivityId(0),
    };

    /// Creates a label.
    pub const fn new(origin: NodeId, id: ActivityId) -> Self {
        ActivityLabel { origin, id }
    }

    /// Returns true if this is an idle label (id 0 on any node).
    pub const fn is_idle(self) -> bool {
        self.id.0 == 0
    }

    /// Encodes the label as the wire/log integer: origin above the low id
    /// byte.  For origins `0..=255` this is exactly the paper's 16-bit value
    /// zero-extended, so v1 log entries truncate it losslessly.
    pub const fn encode(self) -> u32 {
        (self.origin.0 << 8) | self.id.0 as u32
    }

    /// Decodes a label from its wire/log integer.
    pub const fn decode(raw: u32) -> Self {
        ActivityLabel {
            origin: NodeId(raw >> 8),
            id: ActivityId((raw & 0xFF) as u8),
        }
    }
}

impl fmt::Display for ActivityLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.origin, self.id)
    }
}

/// How an activity id is used, for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// The idle / no-work label.
    Idle,
    /// A programmer-defined application activity ("Red", "BounceApp", ...).
    Application,
    /// An OS-internal activity (the virtual timer, the scheduler, ...).
    System,
    /// A proxy activity statically bound to an interrupt source; its usage is
    /// re-assigned once the real activity becomes known.
    Proxy,
}

/// A node-local registry of activity ids, names and kinds.
///
/// The registry is pure bookkeeping for humans: labels on the wire and in the
/// log are just 16-bit integers.  Keeping names out of the hot path mirrors
/// the paper, where ids are statically defined integers.
#[derive(Debug, Clone)]
pub struct ActivityRegistry {
    node: NodeId,
    names: Vec<(ActivityId, String, ActivityKind)>,
    next_id: u8,
}

impl ActivityRegistry {
    /// Creates a registry for a node; id 0 is pre-registered as "Idle".
    pub fn new(node: NodeId) -> Self {
        ActivityRegistry {
            node,
            names: vec![(ActivityId::IDLE, "Idle".to_string(), ActivityKind::Idle)],
            next_id: 1,
        }
    }

    /// The node this registry belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a new activity and returns its label on this node.
    ///
    /// # Panics
    ///
    /// Panics if all 255 non-idle ids on this node are exhausted.
    pub fn define(&mut self, name: impl Into<String>, kind: ActivityKind) -> ActivityLabel {
        assert!(
            self.next_id != 0,
            "activity ids exhausted (max 255 per node)"
        );
        let id = ActivityId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        self.names.push((id, name.into(), kind));
        ActivityLabel::new(self.node, id)
    }

    /// Registers a programmer-defined application activity.
    pub fn define_app(&mut self, name: impl Into<String>) -> ActivityLabel {
        self.define(name, ActivityKind::Application)
    }

    /// Registers an OS-internal activity.
    pub fn define_system(&mut self, name: impl Into<String>) -> ActivityLabel {
        self.define(name, ActivityKind::System)
    }

    /// Registers a proxy activity for an interrupt source.  By convention the
    /// paper names these `int_<SOURCE>` or `pxy_<SOURCE>`.
    pub fn define_proxy(&mut self, name: impl Into<String>) -> ActivityLabel {
        self.define(name, ActivityKind::Proxy)
    }

    /// The idle label for this node.
    pub fn idle(&self) -> ActivityLabel {
        ActivityLabel::new(self.node, ActivityId::IDLE)
    }

    /// Looks up the name of an id registered on this node.
    pub fn name(&self, id: ActivityId) -> Option<&str> {
        self.names
            .iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, n, _)| n.as_str())
    }

    /// Looks up the kind of an id registered on this node.
    pub fn kind(&self, id: ActivityId) -> Option<ActivityKind> {
        self.names
            .iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, _, k)| *k)
    }

    /// Renders a label as `origin:name` when the label originates here, or
    /// `origin:#id` otherwise (a remote registry would know the name).
    pub fn label_name(&self, label: ActivityLabel) -> String {
        if label.origin == self.node {
            if let Some(name) = self.name(label.id) {
                return format!("{}:{}", label.origin, name);
            }
        }
        format!("{}:#{}", label.origin, label.id)
    }

    /// Iterates over all registered `(id, name, kind)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ActivityId, &str, ActivityKind)> {
        self.names.iter().map(|(i, n, k)| (*i, n.as_str(), *k))
    }

    /// Number of registered activities (including Idle).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns true if only the idle activity is registered.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_encoding_round_trips() {
        let l = ActivityLabel::new(NodeId(4), ActivityId(17));
        assert_eq!(l.encode(), 0x0411);
        assert_eq!(ActivityLabel::decode(0x0411), l);
        assert_eq!(ActivityLabel::decode(l.encode()), l);
        assert_eq!(ActivityLabel::IDLE.encode(), 0);
        assert!(ActivityLabel::IDLE.is_idle());
        assert!(!l.is_idle());
        assert_eq!(format!("{l}"), "4:17");
    }

    #[test]
    fn every_label_round_trips() {
        for origin in [0u32, 1, 7, 255, 256, 4242, NodeId::MAX_LABEL_ORIGIN] {
            for id in [0u8, 1, 128, 255] {
                let l = ActivityLabel::new(NodeId(origin), ActivityId(id));
                assert_eq!(ActivityLabel::decode(l.encode()), l);
            }
        }
    }

    #[test]
    fn wide_origins_extend_the_v1_encoding() {
        // v1-range origins encode exactly as the paper's 16-bit value.
        let narrow = ActivityLabel::new(NodeId(254), ActivityId(3));
        assert_eq!(narrow.encode(), 0xFE03);
        assert!(narrow.origin.fits_v1());
        // Wider origins spill into the upper bits only v2 entries carry.
        let wide = ActivityLabel::new(NodeId(1000), ActivityId(3));
        assert_eq!(wide.encode(), (1000 << 8) | 3);
        assert!(!wide.origin.fits_v1());
        assert!(!NodeId::BROADCAST.fits_v1());
    }

    #[test]
    fn registry_assigns_sequential_ids() {
        let mut reg = ActivityRegistry::new(NodeId(1));
        let red = reg.define_app("Red");
        let green = reg.define_app("Green");
        let vtimer = reg.define_system("VTimer");
        let int_timer = reg.define_proxy("int_TIMER");
        assert_eq!(red.id, ActivityId(1));
        assert_eq!(green.id, ActivityId(2));
        assert_eq!(vtimer.id, ActivityId(3));
        assert_eq!(int_timer.id, ActivityId(4));
        assert_eq!(red.origin, NodeId(1));
        assert_eq!(reg.name(ActivityId(1)), Some("Red"));
        assert_eq!(reg.kind(ActivityId(4)), Some(ActivityKind::Proxy));
        assert_eq!(reg.kind(ActivityId(0)), Some(ActivityKind::Idle));
        assert_eq!(reg.len(), 5);
        assert!(!reg.is_empty());
    }

    #[test]
    fn label_name_formats_local_and_remote() {
        let mut reg = ActivityRegistry::new(NodeId(1));
        let bounce = reg.define_app("BounceApp");
        assert_eq!(reg.label_name(bounce), "1:BounceApp");
        let remote = ActivityLabel::new(NodeId(4), ActivityId(1));
        assert_eq!(reg.label_name(remote), "4:#1");
        assert_eq!(reg.label_name(reg.idle()), "1:Idle");
    }

    #[test]
    fn registry_is_per_node() {
        let mut a = ActivityRegistry::new(NodeId(1));
        let mut b = ActivityRegistry::new(NodeId(4));
        let la = a.define_app("BounceApp");
        let lb = b.define_app("BounceApp");
        assert_ne!(la, lb);
        assert_eq!(la.id, lb.id);
        assert_ne!(la.origin, lb.origin);
    }
}
