//! Allocation gate for the steady-state logging hot path.
//!
//! This is a dedicated integration-test binary because `#[global_allocator]`
//! is per-binary: a counting allocator wraps the system one, and the test
//! proves that once the record → flush-drain → digest-fold pipeline is warm
//! (buffer at capacity, encode scratch grown), pushing thousands more
//! entries through it performs **zero** heap allocations.  This is the
//! property the pooled `SimWorkspace` sweep path stands on — per-entry cost
//! is pure compute, never allocator traffic.
//!
//! The binary holds exactly one `#[test]` so no concurrent test can touch
//! the allocator between the two counter reads.

use quanto_core::{EntryKind, LogEntry, OverflowPolicy, RamLogger, StreamDigest};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation (frees are irrelevant to the
/// gate) and delegates the actual work to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn entry(i: u64) -> LogEntry {
    LogEntry {
        kind: EntryKind::PowerState,
        res_id: (i % 4) as u8,
        time_us: i * 17,
        icount: i as u32,
        value: (i % 3) as u32,
    }
}

#[test]
fn steady_state_record_drain_fold_allocates_nothing() {
    const CAP: usize = 64;
    const STEADY_ENTRIES: u64 = 64 * CAP as u64;
    // The sink drives the chunked digest fold with a reusable scratch
    // buffer — the exact shape the fleet's streaming LiveNode sink has.
    let state = Rc::new(RefCell::new((StreamDigest::new(), Vec::<u8>::new())));
    let tap = state.clone();
    let mut logger = RamLogger::new(CAP, OverflowPolicy::Flush);
    logger.set_sink(Box::new(move |chunk: &[LogEntry]| {
        let mut guard = tap.borrow_mut();
        let (digest, scratch) = &mut *guard;
        digest.fold_chunk(chunk, scratch);
    }));

    // Warm-up: several full overflow cycles, so the RAM buffer sits at its
    // reserved capacity and the encode scratch has grown to one chunk's
    // worth of encoded bytes.
    for i in 0..(4 * CAP as u64) {
        logger.record(entry(i));
    }

    // The libtest harness thread occasionally allocates concurrently, so a
    // single measurement can see noise.  A real per-entry allocation would
    // show up in *every* attempt (thousands of counts, proportional to the
    // entries pushed); transient harness noise does not — so the gate is:
    // at least one attempt must observe exactly zero allocations.
    let mut deltas = Vec::with_capacity(5);
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..STEADY_ENTRIES {
            logger.record(entry(i));
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        if after == before {
            deltas.clear();
            break;
        }
        deltas.push(after - before);
    }
    assert!(
        deltas.is_empty(),
        "steady-state record→drain→fold allocated in every attempt \
         ({deltas:?} allocations over {STEADY_ENTRIES} entries each)",
    );

    // Sanity: the pipeline actually ran — every recorded entry reached the
    // digest (minus at most one buffer still waiting to flush).
    drop(logger);
    let (digest, scratch) = &*state.borrow();
    assert!(digest.entries() >= STEADY_ENTRIES, "sink saw the stream");
    assert!(scratch.capacity() > 0, "scratch was warmed");
}
