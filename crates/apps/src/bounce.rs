//! Bounce: two nodes exchanging two packets (Section 4.2.2).
//!
//! Each node originates one packet; when a node receives a packet it turns an
//! LED on (charged to the packet's *originating* activity, even when that
//! activity started on the other node), waits a moment and sends the packet
//! back.  All of the work node 1 does to receive, process and send node 4's
//! packet is attributed to `4:BounceApp`.

use crate::context::ExperimentContext;
use hw_model::SimDuration;
use net_sim::NetSim;
use os_sim::{AmPacket, Application, NodeConfig, NodeRunOutput, OsHandle, TimerId};
use quanto_core::{ActivityLabel, NodeId};

/// AM type used by Bounce packets.
pub const BOUNCE_AM_TYPE: u8 = 0x42;

/// The Bounce application for one node.
#[derive(Debug, Clone)]
pub struct BounceApp {
    peer: NodeId,
    /// Whether this node originates a packet at boot.
    initiator: bool,
    app_activity: ActivityLabel,
    /// Which LED indicates "holding the locally originated packet".
    own_led: usize,
    /// Which LED indicates "holding the peer's packet".
    peer_led: usize,
    /// Delay before bouncing a received packet back.
    hold_time: SimDuration,
    send_timer: Option<TimerId>,
    kickoff_timer: Option<TimerId>,
    /// The activity to charge the pending send to (the received packet's).
    pending_send_activity: Option<ActivityLabel>,
}

impl BounceApp {
    /// Creates a Bounce endpoint talking to `peer`.
    pub fn new(peer: NodeId, initiator: bool) -> Self {
        BounceApp {
            peer,
            initiator,
            app_activity: ActivityLabel::IDLE,
            own_led: 1,
            peer_led: 2,
            hold_time: SimDuration::from_millis(20),
            send_timer: None,
            kickoff_timer: None,
            pending_send_activity: None,
        }
    }
}

impl Application for BounceApp {
    fn boot(&mut self, os: &mut OsHandle) {
        self.app_activity = os.define_activity("BounceApp");
        os.set_cpu_activity(self.app_activity);
        os.radio_on();
        if self.initiator {
            // Give both radios time to start listening before the first
            // send, and stagger the two originators so their first packets
            // do not collide.
            let stagger = 50 + os.node_id().as_u64() * 25;
            self.kickoff_timer = Some(os.start_timer(SimDuration::from_millis(stagger), false));
        }
        os.set_cpu_activity(os.idle_activity());
    }

    fn timer_fired(&mut self, timer: TimerId, os: &mut OsHandle) {
        if Some(timer) == self.kickoff_timer {
            // Originate this node's packet under its own activity.
            os.set_cpu_activity(self.app_activity);
            os.led_on(self.own_led);
            os.send(self.peer, BOUNCE_AM_TYPE, vec![0u8; 16]);
        } else if Some(timer) == self.send_timer {
            // Bounce the held packet back.  The timer restored the activity
            // it was started under (the originating activity), so the send is
            // charged to it automatically.
            if let Some(activity) = self.pending_send_activity.take() {
                os.set_cpu_activity(activity);
            }
            os.send(self.peer, BOUNCE_AM_TYPE, vec![0u8; 16]);
        }
    }

    fn packet_received(&mut self, packet: &AmPacket, os: &mut OsHandle) {
        if packet.am_type != BOUNCE_AM_TYPE {
            return;
        }
        // The CPU is already painted with the packet's originating activity.
        let origin_activity = os.cpu_activity();
        let led = if origin_activity.origin == os.node_id() {
            self.own_led
        } else {
            self.peer_led
        };
        os.led_on(led);
        self.pending_send_activity = Some(origin_activity);
        // A little per-node jitter keeps the two circulating packets from
        // locking into repeated collisions.
        let jitter = SimDuration::from_millis(os.random(10) as u64);
        self.send_timer = Some(os.start_timer(self.hold_time + jitter, false));
    }

    fn send_done(&mut self, os: &mut OsHandle) {
        // Possession of the packet has moved to the peer: both LEDs off.
        os.led_off(self.own_led);
        os.led_off(self.peer_led);
    }
}

/// Output of a Bounce run.
#[derive(Debug)]
pub struct BounceRun {
    /// Per-node outputs, keyed by node id.
    pub outputs: Vec<(NodeId, NodeRunOutput)>,
    /// Per-node analysis contexts, in the same order as `outputs`.
    pub contexts: Vec<(NodeId, ExperimentContext)>,
}

impl BounceRun {
    /// The output of a specific node.
    pub fn output(&self, id: NodeId) -> &NodeRunOutput {
        &self
            .outputs
            .iter()
            .find(|(n, _)| *n == id)
            .expect("node ran")
            .1
    }

    /// The context of a specific node.
    pub fn context(&self, id: NodeId) -> &ExperimentContext {
        &self
            .contexts
            .iter()
            .find(|(n, _)| *n == id)
            .expect("node ran")
            .1
    }
}

/// Runs Bounce between nodes 1 and 4 (the ids the paper uses) for `duration`.
pub fn run_bounce(duration: SimDuration) -> BounceRun {
    run_bounce_with(duration, NodeId(1), NodeId(4), |c| c)
}

/// Runs Bounce with custom node ids and a configuration hook applied to both
/// nodes (e.g. to switch the SPI mode for the Figure 16 study).
pub fn run_bounce_with(
    duration: SimDuration,
    a: NodeId,
    b: NodeId,
    tweak: impl Fn(NodeConfig) -> NodeConfig,
) -> BounceRun {
    let mut net = NetSim::new();
    let mk = |id: NodeId| {
        tweak(NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(id)
        })
    };
    net.add_node(mk(a), Box::new(BounceApp::new(b, true)));
    net.add_node(mk(b), Box::new(BounceApp::new(a, true)));
    net.run_until(hw_model::SimTime::ZERO + duration);
    let contexts: Vec<(NodeId, ExperimentContext)> = [a, b]
        .iter()
        .map(|id| {
            (
                *id,
                ExperimentContext::from_kernel(net.node(*id).expect("node exists").kernel()),
            )
        })
        .collect();
    let outputs = net.finish(hw_model::SimTime::ZERO + duration);
    BounceRun { outputs, contexts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::activity_segments;

    #[test]
    fn bounce_attributes_remote_work_on_both_nodes() {
        let run = run_bounce(SimDuration::from_secs(3));
        let n1 = NodeId(1);
        let n4 = NodeId(4);
        let out1 = run.output(n1);
        let out4 = run.output(n4);
        assert!(out1.radio_stats.packets_sent >= 1);
        assert!(out1.radio_stats.packets_received >= 1);
        assert!(out4.radio_stats.packets_sent >= 1);
        assert!(out4.radio_stats.packets_received >= 1);

        // Node 1's CPU spent time working under node 4's activity.
        let ctx1 = run.context(n1);
        let segs = activity_segments(&out1.log, ctx1.cpu_dev, true, Some(out1.final_stamp));
        let remote_time: u64 = segs
            .iter()
            .filter(|s| s.label.origin == n4 && !s.label.is_idle())
            .map(|s| s.duration().as_micros())
            .sum();
        assert!(
            remote_time > 0,
            "node 1 must charge some CPU time to 4:BounceApp"
        );
        // And symmetrically on node 4.
        let ctx4 = run.context(n4);
        let segs4 = activity_segments(&out4.log, ctx4.cpu_dev, true, Some(out4.final_stamp));
        assert!(segs4
            .iter()
            .any(|s| s.label.origin == n1 && !s.label.is_idle()));
    }

    #[test]
    fn bounce_keeps_exchanging_packets_over_time() {
        let short = run_bounce(SimDuration::from_secs(1));
        let long = run_bounce(SimDuration::from_secs(4));
        let sent_short = short.output(NodeId(1)).radio_stats.packets_sent;
        let sent_long = long.output(NodeId(1)).radio_stats.packets_sent;
        assert!(
            sent_long > sent_short,
            "longer runs bounce more packets ({sent_short} vs {sent_long})"
        );
    }
}
