//! The paper's applications and experiment drivers.
//!
//! * [`blink`] — Blink (three timers, three LEDs, three activities), the
//!   calibration and profiling workload of Sections 4.1 and 4.2.1.
//! * [`bounce`] — Bounce, the two-node packet ping-pong whose cross-node
//!   activity tracking is Figure 12.
//! * [`sense_send`] — the sense-and-send application of Figure 7.
//! * [`lpl`] — the low-power-listening node under 802.11 interference
//!   (Figures 13 and 14).
//! * [`timer_probe`] — the simple timer application that exposed the 16 Hz
//!   DCO-calibration interrupt (Figure 15).
//! * [`experiments`] — drivers that run each experiment and return the data
//!   behind every table and figure.
//! * [`context`] — the node-side facts (catalog, sink ownership, activity
//!   names) that the offline analysis needs.

pub mod blink;
pub mod bounce;
pub mod context;
pub mod experiments;
pub mod lpl;
pub mod sense_send;
pub mod timer_probe;

pub use blink::{blink_run_from_parts, run_blink, run_blink_with_config, BlinkApp, BlinkRun};
pub use bounce::{run_bounce, run_bounce_with, BounceApp, BounceRun, BOUNCE_AM_TYPE};
pub use context::ExperimentContext;
pub use experiments::{
    blink_profile, blink_profile_from_run, calibration_experiment, device_timelines,
    dma_comparison, instrumentation_table, BlinkProfileResult, CalibrationResult,
    DmaComparisonResult, InstrumentationRow, TxTiming,
};
pub use lpl::{
    analyze_lpl, lpl_node_config, paper_interference, run_lpl_comparison, run_lpl_experiment,
    LplListenerApp, LplRun, PAPER_INTERFERENCE_SEED,
};
pub use sense_send::{SenseAndSendApp, SENSE_AM_TYPE};
pub use timer_probe::TimerProbeApp;
