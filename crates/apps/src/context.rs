//! Shared plumbing for experiments: everything the offline analysis needs to
//! know about a node besides its log.

use analysis::breakdown::BreakdownConfig;
use hw_model::catalog::HydrowatchIds;
use hw_model::{Catalog, Energy, Voltage};
use os_sim::Kernel;
use quanto_core::{ActivityLabel, DeviceId};
use std::collections::HashMap;
use std::sync::Arc;

/// A snapshot of the node-side facts the analysis needs: the catalog, which
/// Quanto device owns which energy sink, and the human-readable names of the
/// node's activity labels.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The hardware catalog the node ran on.
    pub catalog: Arc<Catalog>,
    /// Well-known sink ids.
    pub sinks: HydrowatchIds,
    /// The CPU's Quanto device id.
    pub cpu_dev: DeviceId,
    /// The LED devices.
    pub led_devs: [DeviceId; 3],
    /// The radio device.
    pub radio_dev: DeviceId,
    /// The flash device.
    pub flash_dev: DeviceId,
    /// The sensor device.
    pub sensor_dev: DeviceId,
    /// Names of every activity registered on this node.
    pub activity_names: HashMap<ActivityLabel, String>,
    /// Nominal energy per iCount pulse.
    pub energy_per_count: Energy,
    /// Supply voltage.
    pub supply: Voltage,
}

impl ExperimentContext {
    /// Captures the context from a node's kernel (after a run, before or
    /// after `finish`).
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let (cpu_dev, led_devs, radio_dev, flash_dev, sensor_dev) = kernel.device_ids();
        let registry = kernel.quanto().registry();
        let mut activity_names = HashMap::new();
        for (id, name, _) in registry.iter() {
            activity_names.insert(
                ActivityLabel::new(registry.node(), id),
                format!("{}:{}", registry.node(), name),
            );
        }
        ExperimentContext {
            catalog: kernel.catalog().clone(),
            sinks: *kernel.sink_ids(),
            cpu_dev,
            led_devs,
            radio_dev,
            flash_dev,
            sensor_dev,
            activity_names,
            energy_per_count: kernel.config().icount.nominal_energy_per_pulse,
            supply: kernel.config().supply,
        }
    }

    /// A human-readable name for an activity label (falls back to
    /// `origin:#id` for labels registered on other nodes).
    pub fn label_name(&self, label: ActivityLabel) -> String {
        self.activity_names
            .get(&label)
            .cloned()
            .unwrap_or_else(|| format!("{}:#{}", label.origin, label.id))
    }

    /// A human-readable name for a Quanto device.
    pub fn device_name(&self, dev: DeviceId) -> &'static str {
        if dev == self.cpu_dev {
            "CPU"
        } else if dev == self.led_devs[0] {
            "LED0"
        } else if dev == self.led_devs[1] {
            "LED1"
        } else if dev == self.led_devs[2] {
            "LED2"
        } else if dev == self.radio_dev {
            "Radio"
        } else if dev == self.flash_dev {
            "Flash"
        } else if dev == self.sensor_dev {
            "Sensor"
        } else {
            "Other"
        }
    }

    /// The sink-ownership map used by the energy breakdown: each LED sink is
    /// owned by its LED device, every radio sink by the radio device, the
    /// flash by the flash device, the sensor-related sinks by the sensor
    /// device, and the CPU by the CPU device.
    pub fn breakdown_config(&self) -> BreakdownConfig {
        BreakdownConfig::new(self.energy_per_count, self.supply)
            .own(self.sinks.cpu, self.cpu_dev)
            .own(self.sinks.led0, self.led_devs[0])
            .own(self.sinks.led1, self.led_devs[1])
            .own(self.sinks.led2, self.led_devs[2])
            .own(self.sinks.radio_regulator, self.radio_dev)
            .own(self.sinks.radio_control, self.radio_dev)
            .own(self.sinks.radio_rx, self.radio_dev)
            .own(self.sinks.radio_tx, self.radio_dev)
            .own(self.sinks.radio_battery_monitor, self.radio_dev)
            .own(self.sinks.ext_flash, self.flash_dev)
            .own(self.sinks.internal_flash, self.flash_dev)
            .own(self.sinks.temp_sensor, self.sensor_dev)
            .own(self.sinks.adc, self.sensor_dev)
            .own(self.sinks.vref, self.sensor_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::NodeConfig;
    use quanto_core::NodeId;

    #[test]
    fn context_captures_names_and_ownership() {
        let kernel = Kernel::new(NodeConfig::new(NodeId(3)));
        let ctx = ExperimentContext::from_kernel(&kernel);
        // System and proxy activities registered by the kernel are named.
        let vtimer = ctx
            .activity_names
            .iter()
            .find(|(_, name)| name.ends_with(":VTimer"));
        assert!(vtimer.is_some());
        assert_eq!(ctx.device_name(ctx.cpu_dev), "CPU");
        assert_eq!(ctx.device_name(ctx.led_devs[2]), "LED2");
        let cfg = ctx.breakdown_config();
        assert!(cfg.sink_owner.len() >= 10);
        assert_eq!(cfg.sink_owner.get(&ctx.sinks.led1), Some(&ctx.led_devs[1]));
        // Unknown label falls back to origin:#id.
        let foreign = ActivityLabel::new(NodeId(9), quanto_core::ActivityId(7));
        assert_eq!(ctx.label_name(foreign), "9:#7");
    }
}
