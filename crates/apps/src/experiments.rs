//! Experiment drivers: one function per paper table or figure.
//!
//! Each driver runs the relevant workload on the simulated platform, performs
//! the offline analysis, and returns a plain-data summary that the
//! reproduction harnesses in `quanto-bench` print and that the integration
//! tests assert on.

use crate::blink::{run_blink, BlinkRun};
use crate::bounce::run_bounce_with;
use crate::context::ExperimentContext;
use analysis::{
    activity_segments, breakdown, power_intervals, reconstruction_energy_error, regress_intervals,
    Breakdown, RegressionOptions,
};
use energy_meter::{linear_fit, ICountConfig, LinearFit, Oscilloscope};
use hw_model::catalog::led_state;
use hw_model::{Current, Energy, SimDuration, SimTime, Voltage};
use os_sim::{NodeConfig, SpiMode};
use quanto_core::{ActivityLabel, CostModel, EntryKind, NodeId};

/// One steady state of Blink in the calibration experiment (a row of
/// Table 2).
#[derive(Debug, Clone)]
pub struct CalibrationRow {
    /// Which LEDs are on (red, green, blue).
    pub leds: [bool; 3],
    /// Mean current measured by the simulated oscilloscope over this state.
    pub scope_current: Current,
    /// Mean current reconstructed from the regression (the XΠ column).
    pub fitted_current: Current,
    /// Total time spent in this state.
    pub time: SimDuration,
}

/// The calibration experiment: Table 2 and Figure 10.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    /// One row per steady LED combination, ordered by the LED bitmask.
    pub rows: Vec<CalibrationRow>,
    /// Estimated per-LED currents (red, green, blue) from the regression.
    pub led_currents: [Current; 3],
    /// Estimated constant (background) current.
    pub constant_current: Current,
    /// Relative error ‖Y − XΠ‖ / ‖Y‖ (the paper reports 0.83 %).
    pub relative_error: f64,
    /// Linear fit of mean current versus iCount switching frequency
    /// (the paper reports I = 2.77·f − 0.05 with R² = 0.99995).
    pub current_vs_frequency: Option<LinearFit>,
    /// The energy represented by one iCount pulse implied by that fit.
    pub energy_per_pulse: Energy,
}

/// Runs the Blink calibration experiment (Section 4.1): a 48-second Blink run
/// whose steady states are measured with the simulated oscilloscope and then
/// regressed per LED.
pub fn calibration_experiment(duration: SimDuration) -> CalibrationResult {
    let run = run_blink(duration);
    let ctx = &run.context;
    let supply = ctx.supply;
    let intervals = power_intervals(&run.output.log, &ctx.catalog, Some(run.output.final_stamp));
    let regression = regress_intervals(
        &intervals,
        &ctx.catalog,
        ctx.energy_per_count,
        RegressionOptions::default(),
    )
    .expect("Blink exercises enough states for the regression");

    // Group intervals by LED combination and measure each combination with
    // the oscilloscope trace (ground truth), like the scope column of
    // Table 2.
    let scope = Oscilloscope::ideal();
    let _ = &scope; // The trace itself provides exact means; scope used in Fig 10.
    let mut rows = Vec::new();
    for mask in 0..8u8 {
        let leds = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
        let matching: Vec<_> = intervals
            .iter()
            .filter(|iv| {
                (iv.states[ctx.sinks.led0.as_usize()] == led_state::ON) == leds[0]
                    && (iv.states[ctx.sinks.led1.as_usize()] == led_state::ON) == leds[1]
                    && (iv.states[ctx.sinks.led2.as_usize()] == led_state::ON) == leds[2]
            })
            .collect();
        if matching.is_empty() {
            continue;
        }
        let mut time = SimDuration::ZERO;
        let mut scope_weighted = 0.0;
        let mut fitted_weighted = 0.0;
        for iv in &matching {
            let dur = iv.duration();
            time += dur;
            let scope_i = run
                .output
                .trace
                .mean_current(iv.start, iv.end)
                .as_micro_amps();
            scope_weighted += scope_i * dur.as_secs_f64();
            let mut fitted = regression.constant_power().as_micro_watts();
            for (i, state) in iv.states.iter().enumerate() {
                if let Some(p) =
                    regression.state_power(&ctx.catalog, hw_model::SinkId(i as u16), *state)
                {
                    fitted += p.as_micro_watts();
                }
            }
            fitted_weighted += (fitted / supply.as_volts()) * dur.as_secs_f64();
        }
        let secs = time.as_secs_f64();
        rows.push(CalibrationRow {
            leds,
            scope_current: Current::from_micro_amps(scope_weighted / secs),
            fitted_current: Current::from_micro_amps(fitted_weighted / secs),
            time,
        });
    }

    let led_currents = [
        regression
            .state_current(&ctx.catalog, ctx.sinks.led0, led_state::ON, supply)
            .unwrap_or(Current::ZERO),
        regression
            .state_current(&ctx.catalog, ctx.sinks.led1, led_state::ON, supply)
            .unwrap_or(Current::ZERO),
        regression
            .state_current(&ctx.catalog, ctx.sinks.led2, led_state::ON, supply)
            .unwrap_or(Current::ZERO),
    ];

    // Figure 10 / the iCount linearity check: mean current vs switching
    // frequency over the steady states.
    let icount = ICountConfig::hydrowatch();
    let points: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            let f_khz = icount.switching_frequency_hz(r.scope_current, supply) / 1_000.0;
            (f_khz, r.scope_current.as_milli_amps())
        })
        .collect();
    let fit = linear_fit(&points);
    let energy_per_pulse = fit
        .map(|f| Energy::from_micro_joules(f.slope * supply.as_volts()))
        .unwrap_or(icount.nominal_energy_per_pulse);

    CalibrationResult {
        rows,
        led_currents,
        constant_current: regression.constant_current(supply),
        relative_error: regression.relative_error,
        current_vs_frequency: fit,
        energy_per_pulse,
    }
}

/// The Blink profile experiment: Table 3 and Figure 11.
#[derive(Debug)]
pub struct BlinkProfileResult {
    /// The underlying run.
    pub run: BlinkRun,
    /// The full energy/time breakdown (Tables 3a–3d).
    pub breakdown: Breakdown,
    /// Relative error between metered and reconstructed total energy
    /// (the paper reports 0.004 %).
    pub reconstruction_error: f64,
    /// Number of log entries generated (the paper reports 597 over 48 s).
    pub log_entries: usize,
    /// Fraction of total CPU time spent logging.
    pub logging_cpu_fraction: f64,
    /// Fraction of *active* CPU time spent logging (the paper reports ~71 %).
    pub logging_active_fraction: f64,
    /// Energy spent on logging itself.
    pub logging_energy: Energy,
}

/// Runs the 48-second Blink profile (Section 4.2.1) and produces the Table 3
/// breakdowns.
pub fn blink_profile(duration: SimDuration) -> BlinkProfileResult {
    blink_profile_from_run(run_blink(duration))
}

/// Produces the Table 3 breakdowns from an already-executed Blink run (e.g.
/// one scenario of a fleet batch).
pub fn blink_profile_from_run(run: BlinkRun) -> BlinkProfileResult {
    let ctx = &run.context;
    let intervals = power_intervals(&run.output.log, &ctx.catalog, Some(run.output.final_stamp));
    let bd = breakdown(
        &run.output.log,
        &ctx.catalog,
        &ctx.breakdown_config(),
        Some(run.output.final_stamp),
    )
    .expect("Blink breakdown");
    let reconstruction_error = reconstruction_energy_error(
        &intervals,
        &ctx.catalog,
        &bd.regression,
        ctx.energy_per_count,
    );

    // Logging overhead accounting (Section 4.4).
    let cost = CostModel::paper();
    let logging_us = run.output.cost_stats.total_micros(&cost);
    let total_us = bd.total_time.as_micros() as f64;
    let active_us: f64 = {
        use hw_model::catalog::cpu_state;
        analysis::state_duty_cycle(&intervals, ctx.sinks.cpu, |s| s == cpu_state::ACTIVE) * total_us
    };
    // Energy for logging: the CPU active power times the logging time, plus
    // nothing else (the paper also attributes the constant term).
    let cpu_active_power = bd
        .regression
        .state_power(
            &ctx.catalog,
            ctx.sinks.cpu,
            hw_model::catalog::cpu_state::ACTIVE,
        )
        .unwrap_or(hw_model::Power::ZERO)
        + bd.regression.constant_power();
    let logging_energy = cpu_active_power * SimDuration::from_micros(logging_us as u64);

    BlinkProfileResult {
        log_entries: run.output.log.len(),
        logging_cpu_fraction: logging_us / total_us,
        logging_active_fraction: if active_us > 0.0 {
            logging_us / active_us
        } else {
            0.0
        },
        logging_energy,
        reconstruction_error,
        breakdown: bd,
        run,
    }
}

/// One packet-transmission timing measurement for Figure 16.
#[derive(Debug, Clone, Copy)]
pub struct TxTiming {
    /// SPI mode used.
    pub mode: SpiMode,
    /// Time from `send()` to the end of the FIFO load.
    pub fifo_load: SimDuration,
    /// Time from `send()` to the end of the over-the-air transmission.
    pub total: SimDuration,
    /// Number of CPU interrupts taken during the FIFO load.
    pub load_interrupts: usize,
}

/// The Figure 16 experiment: packet transmission timing with interrupt-driven
/// versus DMA-based CPU↔radio communication.
#[derive(Debug, Clone, Copy)]
pub struct DmaComparisonResult {
    /// Interrupt-driven timing.
    pub interrupt: TxTiming,
    /// DMA timing.
    pub dma: TxTiming,
}

impl DmaComparisonResult {
    /// How many times faster the DMA FIFO load is.
    pub fn speedup(&self) -> f64 {
        self.interrupt.fifo_load.as_secs_f64() / self.dma.fifo_load.as_secs_f64().max(1e-12)
    }
}

fn measure_tx(mode: SpiMode) -> TxTiming {
    let duration = SimDuration::from_secs(2);
    let run = run_bounce_with(duration, NodeId(1), NodeId(4), |c| NodeConfig {
        spi_mode: mode,
        ..c
    });
    let out = run.output(NodeId(1));
    let ctx = run.context(NodeId(1));
    let entries = analysis::unwrap_times(&out.log);
    // The first over-the-air transmission: TX power state on, then off.
    let tx_on = entries
        .iter()
        .find(|e| {
            e.entry.kind == EntryKind::PowerState
                && e.entry.sink() == Some(ctx.sinks.radio_tx)
                && e.entry.value != 0
        })
        .map(|e| e.time)
        .expect("TX power state seen");
    let tx_off = entries
        .iter()
        .find(|e| {
            e.entry.kind == EntryKind::PowerState
                && e.entry.sink() == Some(ctx.sinks.radio_tx)
                && e.entry.value == 0
                && e.time > tx_on
        })
        .map(|e| e.time)
        .expect("TX completion seen");
    // The FIFO load is the run of SPI / DMA proxy segments on the CPU that
    // precedes the transmission.
    let cpu_segs = activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
    let is_load = |label: ActivityLabel| {
        let name = ctx.label_name(label);
        name.ends_with(":int_UART0RX") || name.ends_with(":int_DACDMA")
    };
    let load_segs: Vec<_> = cpu_segs
        .iter()
        .filter(|s| s.end <= tx_on && is_load(s.label))
        .collect();
    let load_interrupts = load_segs.len();
    let load_start = load_segs.first().map(|s| s.start).unwrap_or(tx_on);
    let load_end = load_segs.last().map(|s| s.end).unwrap_or(tx_on);
    TxTiming {
        mode,
        fifo_load: load_end.saturating_duration_since(load_start),
        total: tx_off.saturating_duration_since(load_start),
        load_interrupts,
    }
}

/// Runs the DMA-versus-interrupt comparison of Figure 16.
pub fn dma_comparison() -> DmaComparisonResult {
    DmaComparisonResult {
        interrupt: measure_tx(SpiMode::Interrupt),
        dma: measure_tx(SpiMode::Dma),
    }
}

/// One activity segment on a device timeline: `(start, end, activity name)`.
pub type TimelineSegment = (SimTime, SimTime, String);

/// A device's plotted timeline: `(device name, its non-idle segments)`.
pub type DeviceTimeline = (String, Vec<TimelineSegment>);

/// The per-device activity timeline used for the Figure 11/12/14/15 style
/// plots.
pub fn device_timelines(
    log: &[quanto_core::LogEntry],
    ctx: &ExperimentContext,
    final_stamp: quanto_core::Stamp,
    resolve: bool,
) -> Vec<DeviceTimeline> {
    let devices = [
        ctx.cpu_dev,
        ctx.led_devs[0],
        ctx.led_devs[1],
        ctx.led_devs[2],
        ctx.radio_dev,
        ctx.flash_dev,
        ctx.sensor_dev,
    ];
    devices
        .iter()
        .map(|dev| {
            let segs = activity_segments(log, *dev, resolve, Some(final_stamp));
            let rows = segs
                .iter()
                .filter(|s| !s.label.is_idle())
                .map(|s| (s.start, s.end, ctx.label_name(s.label)))
                .collect();
            (ctx.device_name(*dev).to_string(), rows)
        })
        .collect()
}

/// A row of the Table 5 reproduction: an instrumented abstraction and how
/// many touch points the reproduction instruments for it.
#[derive(Debug, Clone)]
pub struct InstrumentationRow {
    /// The abstraction (tasks, timers, arbiter, ...).
    pub abstraction: &'static str,
    /// The paper's "files changed" count.
    pub paper_files: u32,
    /// The paper's "lines changed" count.
    pub paper_lines: u32,
    /// What the abstraction provides.
    pub role: &'static str,
    /// The module in this reproduction that carries the instrumentation.
    pub our_module: &'static str,
}

/// The Table 5 data: the paper's instrumentation costs next to where the same
/// instrumentation lives in this reproduction.
pub fn instrumentation_table() -> Vec<InstrumentationRow> {
    vec![
        InstrumentationRow {
            abstraction: "Tasks",
            paper_files: 2,
            paper_lines: 25,
            role: "Concurrency",
            our_module: "os-sim::sched",
        },
        InstrumentationRow {
            abstraction: "Timers",
            paper_files: 2,
            paper_lines: 16,
            role: "Deferral",
            our_module: "os-sim::timer",
        },
        InstrumentationRow {
            abstraction: "Arbiter",
            paper_files: 5,
            paper_lines: 34,
            role: "Locks",
            our_module: "os-sim::arbiter",
        },
        InstrumentationRow {
            abstraction: "Interrupts",
            paper_files: 11,
            paper_lines: 88,
            role: "Proxy activities",
            our_module: "os-sim::kernel (IrqSource)",
        },
        InstrumentationRow {
            abstraction: "Active Msg.",
            paper_files: 2,
            paper_lines: 8,
            role: "Link layer",
            our_module: "os-sim::packet + kernel::finish_rx",
        },
        InstrumentationRow {
            abstraction: "LEDs",
            paper_files: 2,
            paper_lines: 33,
            role: "Device driver",
            our_module: "os-sim::drivers::led",
        },
        InstrumentationRow {
            abstraction: "CC2420 Radio",
            paper_files: 11,
            paper_lines: 105,
            role: "Device driver",
            our_module: "os-sim::drivers::radio",
        },
        InstrumentationRow {
            abstraction: "SHT11",
            paper_files: 3,
            paper_lines: 10,
            role: "Sensor",
            our_module: "os-sim::drivers::sensor",
        },
        InstrumentationRow {
            abstraction: "New code",
            paper_files: 28,
            paper_lines: 1275,
            role: "Infrastructure",
            our_module: "quanto-core",
        },
    ]
}

/// The supply voltage used throughout the experiments.
pub fn paper_supply() -> Voltage {
    Voltage::from_volts(3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table_2_shape() {
        let cal = calibration_experiment(SimDuration::from_secs(24));
        assert_eq!(cal.rows.len(), 8, "all eight steady states observed");
        // Ordering of per-LED currents: red > green > blue.
        assert!(cal.led_currents[0] > cal.led_currents[1]);
        assert!(cal.led_currents[1] > cal.led_currents[2]);
        // The fit between scope current and switching frequency is linear.
        let fit = cal.current_vs_frequency.expect("fit");
        assert!(fit.r_squared > 0.999, "R^2 {}", fit.r_squared);
        // The implied energy per pulse is close to the configured 8.33 uJ.
        assert!(
            (cal.energy_per_pulse.as_micro_joules() - 8.33).abs() < 0.5,
            "energy per pulse {}",
            cal.energy_per_pulse
        );
        // Relative error of the regression is small (paper: 0.83 %).
        assert!(cal.relative_error < 0.05, "{}", cal.relative_error);
        // Each row's fitted current is close to the scope current.
        for row in &cal.rows {
            let scope = row.scope_current.as_milli_amps();
            let fitted = row.fitted_current.as_milli_amps();
            assert!(
                (scope - fitted).abs() < 0.3,
                "state {:?}: scope {scope} vs fitted {fitted}",
                row.leds
            );
        }
    }

    #[test]
    fn blink_profile_reproduces_table_3_shape() {
        let profile = blink_profile(SimDuration::from_secs(24));
        let bd = &profile.breakdown;
        let ctx = &profile.run.context;
        // Time breakdown: each LED spends roughly half the run on.
        let total = bd.total_time.as_secs_f64();
        for (i, act) in profile.run.led_activities.iter().enumerate() {
            let on_time = bd.device_activity_time(ctx.led_devs[i], *act).as_secs_f64();
            assert!(
                (on_time / total - 0.5).abs() < 0.15,
                "LED{i} on fraction {}",
                on_time / total
            );
        }
        // The CPU is active only a tiny fraction of the time (paper 0.178 %):
        // almost all CPU time is charged to idle labels.
        let idle_time: f64 = bd
            .time_per_device_activity
            .iter()
            .filter(|((dev, label), _)| *dev == ctx.cpu_dev && label.is_idle())
            .map(|(_, d)| d.as_secs_f64())
            .sum();
        assert!(
            idle_time / total > 0.95,
            "CPU idle fraction {}",
            idle_time / total
        );
        // Energy per activity: red > green > blue > housekeeping.
        let [red, green, blue] = profile.run.led_activities;
        assert!(bd.activity_energy(red) > bd.activity_energy(green));
        assert!(bd.activity_energy(green) > bd.activity_energy(blue));
        // Reconstruction error is tiny.
        assert!(
            profile.reconstruction_error < 0.02,
            "{}",
            profile.reconstruction_error
        );
        // Logging dominates active CPU time but not total CPU time.
        assert!(profile.logging_active_fraction > 0.3);
        assert!(profile.logging_cpu_fraction < 0.02);
        assert!(profile.log_entries > 100);
    }

    #[test]
    fn dma_is_at_least_twice_as_fast() {
        let cmp = dma_comparison();
        assert!(
            cmp.speedup() >= 2.0,
            "DMA speedup {} (interrupt {:?} vs dma {:?})",
            cmp.speedup(),
            cmp.interrupt.fifo_load,
            cmp.dma.fifo_load
        );
        assert!(cmp.interrupt.load_interrupts > cmp.dma.load_interrupts);
        assert!(cmp.interrupt.total > cmp.dma.total);
    }

    #[test]
    fn instrumentation_table_totals_match_paper() {
        let rows = instrumentation_table();
        let core_lines: u32 = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.abstraction,
                    "Tasks" | "Timers" | "Arbiter" | "Interrupts" | "Active Msg."
                )
            })
            .map(|r| r.paper_lines)
            .sum();
        assert_eq!(core_lines, 171, "core OS primitive lines (paper: 171)");
        let driver_lines: u32 = rows
            .iter()
            .filter(|r| matches!(r.abstraction, "LEDs" | "CC2420 Radio" | "SHT11"))
            .map(|r| r.paper_lines)
            .sum();
        assert_eq!(driver_lines, 148, "driver lines (paper: 148)");
        assert_eq!(rows.last().unwrap().paper_lines, 1275);
    }
}
