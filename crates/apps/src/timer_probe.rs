//! The timer-probe application behind Figure 15.
//!
//! The paper instrumented "a simple timer-based application" and was
//! surprised to find the TimerA1 interrupt firing 16 times per second to
//! calibrate the digital oscillator, even though no component needed it.
//! This application reproduces that scenario: two activities alternate on a
//! slow timer while the OS's calibration interrupt ticks away underneath.

use hw_model::SimDuration;
use os_sim::{Application, OsHandle, TimerId};
use quanto_core::ActivityLabel;

/// A simple two-activity timer application.
#[derive(Debug, Clone)]
pub struct TimerProbeApp {
    act_a: ActivityLabel,
    act_b: ActivityLabel,
    period: SimDuration,
    phase: bool,
}

impl TimerProbeApp {
    /// Creates the probe with the given application-timer period.
    pub fn new(period: SimDuration) -> Self {
        TimerProbeApp {
            act_a: ActivityLabel::IDLE,
            act_b: ActivityLabel::IDLE,
            period,
            phase: false,
        }
    }
}

impl Default for TimerProbeApp {
    fn default() -> Self {
        TimerProbeApp::new(SimDuration::from_millis(500))
    }
}

impl Application for TimerProbeApp {
    fn boot(&mut self, os: &mut OsHandle) {
        self.act_a = os.define_activity("ActA");
        self.act_b = os.define_activity("ActB");
        os.set_cpu_activity(self.act_a);
        os.start_timer(self.period, true);
        os.led_on(0);
        os.set_cpu_activity(os.idle_activity());
    }

    fn timer_fired(&mut self, _timer: TimerId, os: &mut OsHandle) {
        self.phase = !self.phase;
        let act = if self.phase { self.act_b } else { self.act_a };
        os.set_cpu_activity(act);
        // A little application work and an LED toggle, so the timeline has
        // something to show besides the calibration interrupt.
        os.busy_wait(200);
        os.led_toggle(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use analysis::activity_segments;
    use os_sim::{NodeConfig, Simulator};
    use quanto_core::NodeId;

    #[test]
    fn dco_calibration_fires_sixteen_times_per_second() {
        let config = NodeConfig::new(NodeId(32)); // The paper's node id 32.
        let mut sim = Simulator::new(config, Box::new(TimerProbeApp::default()));
        let out = sim.run_for(SimDuration::from_secs(4));
        let ctx = ExperimentContext::from_kernel(sim.node().kernel());

        // Count CPU segments under the int_TIMERA1 proxy activity.
        let segs = activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
        let a1_segments = segs
            .iter()
            .filter(|s| ctx.label_name(s.label).ends_with(":int_TIMERA1"))
            .count();
        // 16 Hz over 4 seconds = 64 firings (allow a small margin at the
        // window edges).
        assert!(
            (60..=66).contains(&a1_segments),
            "expected ~64 TimerA1 proxy segments, got {a1_segments}"
        );
    }

    #[test]
    fn disabling_calibration_silences_timer_a1() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(32))
        };
        let mut sim = Simulator::new(config, Box::new(TimerProbeApp::default()));
        let out = sim.run_for(SimDuration::from_secs(4));
        let ctx = ExperimentContext::from_kernel(sim.node().kernel());
        let segs = activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
        assert!(!segs
            .iter()
            .any(|s| ctx.label_name(s.label).ends_with(":int_TIMERA1")));
    }
}
