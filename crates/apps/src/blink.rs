//! Blink: the "hello world" of TinyOS, instrumented as in Section 4.2.1.
//!
//! Three independent timers with 1 s, 2 s and 4 s periods toggle the red,
//! green and blue LEDs, so over 8 seconds the node walks through all eight
//! LED on/off combinations.  Each LED's work is charged to its own activity
//! (`Red`, `Green`, `Blue`); timer housekeeping belongs to the OS's `VTimer`
//! activity and the timer interrupt's proxy.

use crate::context::ExperimentContext;
use hw_model::SimDuration;
use os_sim::{Application, NodeConfig, NodeRunOutput, OsHandle, Simulator, TimerId};
use quanto_core::{ActivityLabel, NodeId};

/// The Blink application.
#[derive(Debug, Clone)]
pub struct BlinkApp {
    red: ActivityLabel,
    green: ActivityLabel,
    blue: ActivityLabel,
    timers: [Option<TimerId>; 3],
    /// LED toggle periods, default 1 s / 2 s / 4 s.
    periods: [SimDuration; 3],
}

impl Default for BlinkApp {
    fn default() -> Self {
        BlinkApp::new()
    }
}

impl BlinkApp {
    /// Creates Blink with the paper's 1 s / 2 s / 4 s periods.
    pub fn new() -> Self {
        BlinkApp {
            red: ActivityLabel::IDLE,
            green: ActivityLabel::IDLE,
            blue: ActivityLabel::IDLE,
            timers: [None; 3],
            periods: [
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
            ],
        }
    }

    /// Overrides the toggle periods (useful for fast tests).
    pub fn with_periods(mut self, periods: [SimDuration; 3]) -> Self {
        self.periods = periods;
        self
    }
}

impl Application for BlinkApp {
    fn boot(&mut self, os: &mut OsHandle) {
        self.red = os.define_activity("Red");
        self.green = os.define_activity("Green");
        self.blue = os.define_activity("Blue");
        // Start each timer while painted with its activity: the virtual timer
        // system saves the label and restores it when the timer fires.
        os.set_cpu_activity(self.red);
        self.timers[0] = Some(os.start_timer(self.periods[0], true));
        os.set_cpu_activity(self.green);
        self.timers[1] = Some(os.start_timer(self.periods[1], true));
        os.set_cpu_activity(self.blue);
        self.timers[2] = Some(os.start_timer(self.periods[2], true));
        os.set_cpu_activity(os.idle_activity());
    }

    fn timer_fired(&mut self, timer: TimerId, os: &mut OsHandle) {
        // The CPU already carries the right colour (restored by the timer
        // subsystem); just toggle the matching LED.
        for (idx, t) in self.timers.iter().enumerate() {
            if *t == Some(timer) {
                os.led_toggle(idx);
            }
        }
    }
}

/// Output of one Blink run: the node's raw outputs plus the analysis context.
#[derive(Debug)]
pub struct BlinkRun {
    /// The node's log, trace and ground truth.
    pub output: NodeRunOutput,
    /// Everything the analysis needs about the node.
    pub context: ExperimentContext,
    /// The three LED activities, in LED order (red, green, blue).
    pub led_activities: [ActivityLabel; 3],
}

/// Runs Blink on one node for `duration` (the paper uses 48 s) and collects
/// its outputs.
pub fn run_blink(duration: SimDuration) -> BlinkRun {
    run_blink_with_config(duration, NodeConfig::new(NodeId(1)))
}

/// Runs Blink with an explicit node configuration.
pub fn run_blink_with_config(duration: SimDuration, config: NodeConfig) -> BlinkRun {
    let node_id = config.node_id;
    let mut sim = Simulator::new(config, Box::new(BlinkApp::new()));
    let output = sim.run_for(duration);
    let context = ExperimentContext::from_kernel(sim.node().kernel());
    blink_run_from_parts(node_id, output, context)
}

/// Assembles a [`BlinkRun`] from a finished Blink node's raw outputs and
/// context, resolving the Red/Green/Blue activity labels by name — the same
/// assembly whether the run came from [`run_blink`] or from a fleet scenario
/// batch.
pub fn blink_run_from_parts(
    node_id: NodeId,
    output: NodeRunOutput,
    context: ExperimentContext,
) -> BlinkRun {
    // Red/Green/Blue are the first three activities defined by the app; the
    // kernel defines its system/proxy activities first, so look them up by
    // name.
    let find = |name: &str| {
        context
            .activity_names
            .iter()
            .find(|(l, n)| l.origin == node_id && n.ends_with(&format!(":{name}")))
            .map(|(l, _)| *l)
            .expect("activity registered by BlinkApp")
    };
    let led_activities = [find("Red"), find("Green"), find("Blue")];
    BlinkRun {
        output,
        context,
        led_activities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{breakdown, power_intervals, regress_intervals, RegressionOptions};
    use hw_model::catalog::led_state;

    #[test]
    fn blink_walks_through_all_eight_states() {
        let run = run_blink(SimDuration::from_secs(16));
        let intervals = power_intervals(
            &run.output.log,
            &run.context.catalog,
            Some(run.output.final_stamp),
        );
        // Count the distinct LED on/off combinations seen.
        let mut combos = std::collections::HashSet::new();
        for iv in &intervals {
            let combo = (
                iv.states[run.context.sinks.led0.as_usize()] == led_state::ON,
                iv.states[run.context.sinks.led1.as_usize()] == led_state::ON,
                iv.states[run.context.sinks.led2.as_usize()] == led_state::ON,
            );
            combos.insert(combo);
        }
        assert_eq!(combos.len(), 8, "Blink must visit all 8 LED combinations");
    }

    #[test]
    fn blink_regression_recovers_led_ordering() {
        let run = run_blink(SimDuration::from_secs(24));
        let intervals = power_intervals(
            &run.output.log,
            &run.context.catalog,
            Some(run.output.final_stamp),
        );
        let reg = regress_intervals(
            &intervals,
            &run.context.catalog,
            run.context.energy_per_count,
            RegressionOptions::default(),
        )
        .expect("regression solvable after 24 s of Blink");
        let supply = run.context.supply;
        let i0 = reg
            .state_current(
                &run.context.catalog,
                run.context.sinks.led0,
                led_state::ON,
                supply,
            )
            .unwrap()
            .as_milli_amps();
        let i1 = reg
            .state_current(
                &run.context.catalog,
                run.context.sinks.led1,
                led_state::ON,
                supply,
            )
            .unwrap()
            .as_milli_amps();
        let i2 = reg
            .state_current(
                &run.context.catalog,
                run.context.sinks.led2,
                led_state::ON,
                supply,
            )
            .unwrap()
            .as_milli_amps();
        // Table 1 nominals: 4.3, 3.7, 1.7 mA.  Allow generous tolerance for
        // quantization but require the ordering and rough magnitudes.
        assert!(i0 > i1 && i1 > i2, "red > green > blue ({i0}, {i1}, {i2})");
        assert!((i0 - 4.3).abs() < 0.5, "red {i0} mA");
        assert!((i1 - 3.7).abs() < 0.5, "green {i1} mA");
        assert!((i2 - 1.7).abs() < 0.5, "blue {i2} mA");
        assert!(
            reg.relative_error < 0.05,
            "relative error {}",
            reg.relative_error
        );
    }

    #[test]
    fn blink_breakdown_charges_leds_to_their_colours() {
        let run = run_blink(SimDuration::from_secs(24));
        let bd = breakdown(
            &run.output.log,
            &run.context.catalog,
            &run.context.breakdown_config(),
            Some(run.output.final_stamp),
        )
        .expect("breakdown");
        let [red, green, blue] = run.led_activities;
        let e_red = bd.activity_energy(red).as_milli_joules();
        let e_green = bd.activity_energy(green).as_milli_joules();
        let e_blue = bd.activity_energy(blue).as_milli_joules();
        // Each LED is on about half the time; red draws the most.
        assert!(
            e_red > e_green && e_green > e_blue,
            "{e_red} {e_green} {e_blue}"
        );
        // Reconstruction matches the metered energy.
        assert!(bd.reconstruction_error() < 0.05);
        // Ground truth agreement: the reconstructed LED0 energy is close to
        // the simulator's true per-sink energy (within 10 %).
        let true_red = run.output.ground_truth.sink(run.context.sinks.led0);
        let est_red = bd.sink_energy(run.context.sinks.led0);
        let rel = (true_red.as_micro_joules() - est_red.as_micro_joules()).abs()
            / true_red.as_micro_joules();
        assert!(rel < 0.1, "LED0 estimate off by {rel}");
    }
}
