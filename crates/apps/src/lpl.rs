//! The low-power-listening node of the interference case study (Figure 13).
//!
//! The node does nothing but duty-cycle its radio: every check interval it
//! wakes the receiver, samples the channel, and goes back to sleep unless it
//! detects energy — in which case it stays on waiting for a packet that (when
//! the energy is 802.11 interference) never arrives.

use crate::context::ExperimentContext;
use analysis::{average_power, power_intervals, state_duty_cycle, state_episodes};
use hw_model::catalog::radio_rx_state;
use hw_model::{Energy, Power, SimDuration, SimTime};
use net_sim::{NetSim, WifiInterferer};
use os_sim::{Application, LplConfig, NodeConfig, NodeRunOutput, OsHandle};
use quanto_core::NodeId;

/// An application that just listens with LPL enabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct LplListenerApp;

impl Application for LplListenerApp {
    fn boot(&mut self, os: &mut OsHandle) {
        let listen = os.define_activity("Listen");
        os.set_cpu_activity(listen);
        os.radio_on();
        os.set_cpu_activity(os.idle_activity());
    }
}

/// Results of one LPL interference run (one curve of Figure 13).
#[derive(Debug)]
pub struct LplRun {
    /// The 802.15.4 channel the node listened on.
    pub channel: u8,
    /// Raw node outputs.
    pub output: NodeRunOutput,
    /// Analysis context.
    pub context: ExperimentContext,
    /// Radio duty cycle (fraction of time the RX path was in LISTEN).
    pub duty_cycle: f64,
    /// Number of wake-up episodes observed.
    pub wakeups: usize,
    /// Wake-ups that detected energy but received nothing (false positives).
    pub false_positives: u64,
    /// Fraction of wake-ups that were false positives.
    pub false_positive_rate: f64,
    /// Average power over the run.
    pub average_power: Power,
    /// Cumulative energy over time (for the Figure 13 curves).
    pub cumulative_energy: Vec<(SimTime, Energy)>,
}

/// The node configuration the LPL experiment runs: a listener on `channel`
/// with the paper's 500 ms check interval and no DCO calibration noise.
pub fn lpl_node_config(node: NodeId, channel: u8) -> NodeConfig {
    NodeConfig {
        radio_channel: channel,
        lpl: Some(LplConfig::default()),
        dco_calibration: false,
        ..NodeConfig::new(node)
    }
}

/// The traffic-pattern seed every Figure 13 run uses.
pub const PAPER_INTERFERENCE_SEED: u64 = 7;

/// The paper's interference source: an 802.11b access point on Wi-Fi
/// channel 6 carrying traffic `duty` of the time.  Pass
/// [`PAPER_INTERFERENCE_SEED`] to reproduce the Figure 13 runs; other seeds
/// make the traffic pattern a sweep axis.
pub fn paper_interference(duty: f64, seed: u64) -> WifiInterferer {
    WifiInterferer {
        busy_probability: duty,
        ..WifiInterferer::paper_channel6(seed)
    }
}

/// Runs the LPL listener on `channel` for `duration` with an 802.11b access
/// point on Wi-Fi channel 6 (set `interference_duty` to zero to remove it).
pub fn run_lpl_experiment(channel: u8, duration: SimDuration, interference_duty: f64) -> LplRun {
    let mut net = NetSim::new();
    net.add_node(
        lpl_node_config(NodeId(1), channel),
        Box::new(LplListenerApp),
    );
    if interference_duty > 0.0 {
        net.add_interferer(paper_interference(
            interference_duty,
            PAPER_INTERFERENCE_SEED,
        ));
    }
    net.run_until(SimTime::ZERO + duration);
    let context = ExperimentContext::from_kernel(net.node(NodeId(1)).unwrap().kernel());
    let mut outputs = net.finish(SimTime::ZERO + duration);
    let (_, output) = outputs.remove(0);
    analyze_lpl(channel, output, context)
}

/// Computes the Figure 13 statistics (duty cycle, wake-up classification,
/// average power, cumulative energy) from a finished LPL listener's raw
/// outputs — the same analysis whether the run came from
/// [`run_lpl_experiment`] or from a fleet scenario batch.
pub fn analyze_lpl(channel: u8, output: NodeRunOutput, context: ExperimentContext) -> LplRun {
    let intervals = power_intervals(&output.log, &context.catalog, Some(output.final_stamp));
    let duty_cycle = state_duty_cycle(&intervals, context.sinks.radio_rx, |s| {
        s == radio_rx_state::LISTEN
    });
    let wakeups = state_episodes(&intervals, context.sinks.radio_rx, |s| {
        s == radio_rx_state::LISTEN
    });
    let false_positives = output.radio_stats.false_wakeups;
    let total_wakeups = (output.radio_stats.clean_wakeups
        + output.radio_stats.false_wakeups
        + output.radio_stats.rx_wakeups)
        .max(1);
    let avg_power = average_power(&intervals, context.energy_per_count);
    let cumulative = analysis::cumulative_energy_series(&intervals, context.energy_per_count);
    LplRun {
        channel,
        duty_cycle,
        wakeups,
        false_positives,
        false_positive_rate: false_positives as f64 / total_wakeups as f64,
        average_power: avg_power,
        cumulative_energy: cumulative,
        output,
        context,
    }
}

/// Runs the paper's two-channel comparison: channel 17 (under the access
/// point) versus channel 26 (clear).  Returns `(channel17, channel26)`.
pub fn run_lpl_comparison(duration: SimDuration) -> (LplRun, LplRun) {
    let interfered = run_lpl_experiment(17, duration, 0.18);
    let clean = run_lpl_experiment(26, duration, 0.18);
    (interfered, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_inflates_duty_cycle_and_power() {
        // 14 seconds, as in the paper's measurement windows.
        let (ch17, ch26) = run_lpl_comparison(SimDuration::from_secs(14));

        // The clean channel sees no false positives; the interfered one does.
        assert_eq!(ch26.false_positives, 0, "channel 26 must be clean");
        assert!(
            ch17.false_positives > 0,
            "channel 17 must see false wake-ups"
        );

        // Duty cycle: the clean channel stays low (paper: 2.2 %); the
        // interfered channel is substantially higher (paper: 5.6 %).
        assert!(
            ch26.duty_cycle < 0.04,
            "clean duty cycle {}",
            ch26.duty_cycle
        );
        assert!(
            ch17.duty_cycle > 1.5 * ch26.duty_cycle,
            "interfered duty cycle {} vs clean {}",
            ch17.duty_cycle,
            ch26.duty_cycle
        );

        // Average power follows the same ordering (paper: 1.43 vs 0.92 mW).
        assert!(
            ch17.average_power.as_milli_watts() > ch26.average_power.as_milli_watts(),
            "power {} vs {}",
            ch17.average_power,
            ch26.average_power
        );

        // Both nodes woke up roughly every 500 ms over 14 s.
        assert!(
            (20..=35).contains(&ch17.wakeups),
            "wakeups {}",
            ch17.wakeups
        );
        assert!(
            (20..=35).contains(&ch26.wakeups),
            "wakeups {}",
            ch26.wakeups
        );

        // Cumulative energy is monotone and ends higher on the noisy channel.
        let last17 = ch17.cumulative_energy.last().unwrap().1;
        let last26 = ch26.cumulative_energy.last().unwrap().1;
        assert!(last17 > last26);
    }

    #[test]
    fn no_interference_means_no_false_positives_even_on_channel_17() {
        let run = run_lpl_experiment(17, SimDuration::from_secs(6), 0.0);
        assert_eq!(run.false_positives, 0);
        assert!(run.duty_cycle < 0.04);
    }
}
