//! The sense-and-send application of Figure 7.
//!
//! A periodic timer samples humidity and temperature, each charged to its own
//! activity (`ACT_HUM`, `ACT_TEMP`); when both samples are in, a task posted
//! under the packet activity (`ACT_PKT`) sends the readings to a sink node.

use hw_model::SimDuration;
use os_sim::{Application, OsHandle, SensorKind, TaskId, TimerId};
use quanto_core::{ActivityLabel, NodeId};

/// Task id for the send task.
const SEND_TASK: TaskId = TaskId(1);
/// AM type for readings.
pub const SENSE_AM_TYPE: u8 = 0x51;

/// The sense-and-send application.
#[derive(Debug, Clone)]
pub struct SenseAndSendApp {
    sink: NodeId,
    period: SimDuration,
    act_hum: ActivityLabel,
    act_temp: ActivityLabel,
    act_pkt: ActivityLabel,
    humidity: Option<u16>,
    temperature: Option<u16>,
    /// Completed sense-send rounds.
    pub rounds: u32,
}

impl SenseAndSendApp {
    /// Creates the application, reporting to `sink` every `period`.
    pub fn new(sink: NodeId, period: SimDuration) -> Self {
        SenseAndSendApp {
            sink,
            period,
            act_hum: ActivityLabel::IDLE,
            act_temp: ActivityLabel::IDLE,
            act_pkt: ActivityLabel::IDLE,
            humidity: None,
            temperature: None,
            rounds: 0,
        }
    }

    fn send_if_done(&mut self, os: &mut OsHandle) {
        if self.humidity.is_some() && self.temperature.is_some() {
            // Figure 7: paint the CPU with the packet activity and post the
            // send task; the scheduler carries the label to the task body.
            os.set_cpu_activity(self.act_pkt);
            os.post_task(SEND_TASK);
            self.humidity = None;
            self.temperature = None;
        }
    }
}

impl Application for SenseAndSendApp {
    fn boot(&mut self, os: &mut OsHandle) {
        self.act_hum = os.define_activity("ACT_HUM");
        self.act_temp = os.define_activity("ACT_TEMP");
        self.act_pkt = os.define_activity("ACT_PKT");
        os.radio_on();
        os.set_cpu_activity(self.act_hum);
        os.start_timer(self.period, true);
        os.set_cpu_activity(os.idle_activity());
    }

    fn timer_fired(&mut self, _timer: TimerId, os: &mut OsHandle) {
        // The sensorTask of Figure 7: sample humidity under ACT_HUM, then
        // temperature under ACT_TEMP.  The SHT11 serializes conversions, so
        // the temperature read starts when the humidity one completes.
        os.set_cpu_activity(self.act_hum);
        os.read_sensor(SensorKind::Humidity);
    }

    fn sensor_read_done(&mut self, kind: SensorKind, value: u16, os: &mut OsHandle) {
        match kind {
            SensorKind::Humidity => {
                self.humidity = Some(value);
                os.set_cpu_activity(self.act_temp);
                os.read_sensor(SensorKind::Temperature);
            }
            SensorKind::Temperature => {
                self.temperature = Some(value);
                self.send_if_done(os);
            }
        }
    }

    fn task(&mut self, task: TaskId, os: &mut OsHandle) {
        if task == SEND_TASK {
            let h = self.humidity.unwrap_or(0);
            let t = self.temperature.unwrap_or(0);
            let payload = vec![(h >> 8) as u8, h as u8, (t >> 8) as u8, t as u8];
            os.send(self.sink, SENSE_AM_TYPE, payload);
            self.rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use analysis::activity_segments;
    use os_sim::{NodeConfig, Simulator};

    #[test]
    fn sense_and_send_charges_each_phase_to_its_activity() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(2))
        };
        let app = SenseAndSendApp::new(NodeId(1), SimDuration::from_millis(400));
        let mut sim = Simulator::new(config, Box::new(app));
        let out = sim.run_for(SimDuration::from_secs(2));
        let ctx = ExperimentContext::from_kernel(sim.node().kernel());

        let segs = activity_segments(&out.log, ctx.cpu_dev, true, Some(out.final_stamp));
        let named_time = |suffix: &str| -> u64 {
            segs.iter()
                .filter(|s| ctx.label_name(s.label).ends_with(suffix))
                .map(|s| s.duration().as_micros())
                .sum()
        };
        assert!(named_time(":ACT_HUM") > 0, "humidity activity saw CPU time");
        assert!(
            named_time(":ACT_TEMP") > 0,
            "temperature activity saw CPU time"
        );
        assert!(named_time(":ACT_PKT") > 0, "packet activity saw CPU time");
        // The sensor device was painted as well.
        let sensor_segs = activity_segments(&out.log, ctx.sensor_dev, true, Some(out.final_stamp));
        assert!(sensor_segs.iter().any(|s| !s.label.is_idle()));
        // At least one packet made it out (nobody is listening, but the
        // transmission itself happens).
        assert!(out.radio_stats.packets_sent >= 1);
    }
}
