//! Quanto: tracking energy in networked embedded systems — a full Rust
//! reproduction of the OSDI 2008 paper by Fonseca, Dutta, Levis and Stoica.
//!
//! This facade crate re-exports the whole workspace so that examples, tests
//! and downstream users can depend on a single crate:
//!
//! * [`hw_model`] — energy sinks, power states, the Table 1 catalog and the
//!   ground-truth power model,
//! * [`energy_meter`] — the simulated iCount meter and the oscilloscope,
//! * [`quanto_core`] — the paper's contribution: power-state and activity
//!   tracking interfaces, the 12-byte event log and the per-node runtime,
//! * [`os_sim`] — the TinyOS-like embedded OS simulator (tasks, timers,
//!   arbiters, drivers, Active Messages) instrumented with Quanto,
//! * [`net_sim`] — the multi-node radio medium with 802.11 interference,
//! * [`analysis`] — the offline regression, breakdowns and reports,
//! * [`quanto_apps`] — the paper's applications and experiment drivers,
//! * [`quanto_fleet`] — declarative scenarios and the parallel sweep runner,
//!   and
//! * [`quanto_obs`] — the sweep engine's own tracing & metrics layer,
//!   attributing wall-clock to scenarios and phases the way Quanto
//!   attributes energy to activities, and
//! * [`quanto_serve`] — the sweep-as-a-service daemon: multi-tenant grid
//!   sweeps over one shared worker pool, streamed live over the JSON-lines
//!   protocol documented in `docs/PROTOCOL.md`.
//!
//! # Quickstart
//!
//! ```
//! use quanto::prelude::*;
//!
//! // Run the paper's Blink workload for 16 simulated seconds.
//! let run = quanto_apps::run_blink(SimDuration::from_secs(16));
//!
//! // Regress per-component power draws out of the aggregate energy meter.
//! let intervals = analysis::power_intervals(
//!     &run.output.log,
//!     &run.context.catalog,
//!     Some(run.output.final_stamp),
//! );
//! let regression = analysis::regress_intervals(
//!     &intervals,
//!     &run.context.catalog,
//!     run.context.energy_per_count,
//!     analysis::RegressionOptions::default(),
//! )
//! .expect("Blink exercises enough power states");
//! assert!(regression.relative_error < 0.05);
//! ```

pub use analysis;
pub use energy_meter;
pub use hw_model;
pub use net_sim;
pub use os_sim;
pub use quanto_apps;
pub use quanto_core;
pub use quanto_fleet;
pub use quanto_obs;
pub use quanto_serve;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use analysis::{
        breakdown, power_intervals, regress_intervals, Breakdown, BreakdownConfig,
        RegressionOptions, RegressionResult,
    };
    pub use hw_model::{
        Catalog, Current, Energy, Power, SimDuration, SimTime, SinkId, StateIndex, Voltage,
    };
    pub use os_sim::{
        Application, Kernel, LplConfig, NodeConfig, NodeRunOutput, OsHandle, SensorKind, Simulator,
        SpiMode, TaskId, TimerId,
    };
    pub use quanto_apps::{run_blink, run_bounce, run_lpl_experiment, ExperimentContext};
    pub use quanto_core::{
        ActivityId, ActivityLabel, DeviceId, LogEntry, NodeId, QuantoRuntime, Stamp,
    };
    pub use quanto_fleet::{AppSpec, FleetReport, FleetRunner, Scenario, TopologySpec};
}
