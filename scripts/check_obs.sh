#!/usr/bin/env bash
# Validates a fleet_sweep --obs-json profile: well-formed document, and
# every measurable worker's busy + stall + merge + send time reconciles
# with its wall-clock to within 5% (the obs layer's accounting must
# actually explain where sweep time went, not just emit numbers).
#
#   scripts/check_obs.sh PROFILE.json   # validate an existing profile
#   scripts/check_obs.sh                # run a sweep, then validate it
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-}"
if [[ -z "$profile" ]]; then
  profile="$(mktemp --suffix=.json)"
  trap 'rm -f "$profile"' EXIT
  cargo run --release -q -p quanto-bench --bin fleet_sweep -- \
    --seconds 6 --seeds 2 --obs-json "$profile"
fi

cargo run --release -q -p quanto-bench --bin obs_check -- "$profile"
