#!/usr/bin/env bash
# Gates the fleet-of-fleets result cache: a cold 2-shard sweep of the smoke
# grid populates a fresh cache, and the warm re-run must (a) fold the
# byte-identical digest, (b) answer every cell from the cache (zero misses,
# zero writes — i.e. zero simulations ran), and (c) finish at least 5×
# faster than the cold run.
#
#   scripts/check_cache.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p quanto-bench --bin fleet_sweep
sweep=target/release/fleet_sweep

cache="$(mktemp -d)"
cold_out="$(mktemp)"
warm_out="$(mktemp)"
trap 'rm -rf "$cache" "$cold_out" "$warm_out"' EXIT

run() {
  "$sweep" --grid crates/bench/grids/smoke.grid --seconds 2 \
    --shards 2 --threads 2 --cache "$cache" --json >"$1"
}

start=$(date +%s%N); run "$cold_out"; cold_ns=$(( $(date +%s%N) - start ))
start=$(date +%s%N); run "$warm_out"; warm_ns=$(( $(date +%s%N) - start ))

summary_field() { # FILE KEY — first numeric/hex value of KEY in the summary line
  tail -n 1 "$1" | grep -o "\"$2\":\"\?[0-9a-fx]*" | head -n 1 | sed 's/.*://; s/"//'
}

cold_digest=$(summary_field "$cold_out" digest)
warm_digest=$(summary_field "$warm_out" digest)
warm_misses=$(summary_field "$warm_out" misses)
warm_writes=$(summary_field "$warm_out" writes)

echo "cache gate: cold ${cold_ns}ns ($cold_digest) vs warm ${warm_ns}ns ($warm_digest," \
     "misses=$warm_misses writes=$warm_writes)"

if [[ -z "$cold_digest" || "$cold_digest" != "$warm_digest" ]]; then
  echo "FAIL: warm digest $warm_digest != cold digest $cold_digest" >&2
  exit 1
fi
if [[ "$warm_misses" != 0 || "$warm_writes" != 0 ]]; then
  echo "FAIL: warm run simulated ($warm_misses misses, $warm_writes writes) — cache did not engage" >&2
  exit 1
fi
if (( warm_ns * 5 > cold_ns )); then
  echo "FAIL: warm run ${warm_ns}ns not ≥5× faster than cold ${cold_ns}ns" >&2
  exit 1
fi
echo "cache gate: OK ($(( cold_ns / warm_ns ))× speedup, digest byte-identical, zero simulations)"
