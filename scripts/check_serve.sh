#!/usr/bin/env bash
# Gates the quanto-serve daemon: start it on an ephemeral port, run two
# *concurrent* `fleet_sweep --server` client sweeps of the example grid
# against it, and require (a) both clients complete, (b) both digests are
# byte-identical to each other AND to an in-process (no-daemon, no-cache)
# run of the same grid, and (c) `GET /metrics` returns a clean harvest
# naming both jobs' traffic.
#
#   scripts/check_serve.sh [out-dir]    # client JSON written here (default .)
set -euo pipefail
cd "$(dirname "$0")/.."
out_dir="${1:-.}"
mkdir -p "$out_dir"

cargo build --release -q -p quanto-bench --bin fleet_sweep
cargo build --release -q -p quanto-serve --bin quanto_serve
sweep=target/release/fleet_sweep
serve=target/release/quanto_serve

daemon_out="$(mktemp)"
metrics_out="$(mktemp)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -f "$daemon_out" "$metrics_out"
}
trap cleanup EXIT

# Ephemeral port, no cache (every cell must actually execute on the pool),
# obs on so /metrics carries the engine/runner counters too.
"$serve" --addr 127.0.0.1:0 --no-cache --obs >"$daemon_out" &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^quanto-serve listening on //p' "$daemon_out")"
  [[ -n "$addr" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon died at startup" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "FAIL: daemon never printed its address" >&2; exit 1; }
echo "serve gate: daemon up on $addr (pid $daemon_pid)"

run_client() { # OUT — one served sweep of the example grid
  "$sweep" --server "$addr" --grid examples/sweep.grid --seconds 2 --json >"$1"
}

# Two tenants, genuinely concurrent on the shared pool.
run_client "$out_dir/serve_client_a.json" &
client_a=$!
run_client "$out_dir/serve_client_b.json" &
client_b=$!
wait "$client_a" || { echo "FAIL: client A failed" >&2; exit 1; }
wait "$client_b" || { echo "FAIL: client B failed" >&2; exit 1; }

# The reference digest: the same grid, in-process, cache disabled.
"$sweep" --grid examples/sweep.grid --seconds 2 --no-cache --json >"$out_dir/serve_local.json"

summary_field() { # FILE KEY — first numeric/hex value of KEY in the summary line
  tail -n 1 "$1" | grep -o "\"$2\":\"\?[0-9a-fx]*" | head -n 1 | sed 's/.*://; s/"//'
}

digest_a=$(summary_field "$out_dir/serve_client_a.json" digest)
digest_b=$(summary_field "$out_dir/serve_client_b.json" digest)
digest_local=$(summary_field "$out_dir/serve_local.json" digest)
echo "serve gate: client A $digest_a, client B $digest_b, in-process $digest_local"

if [[ -z "$digest_local" || "$digest_a" != "$digest_local" || "$digest_b" != "$digest_local" ]]; then
  echo "FAIL: served digests must be byte-identical to the in-process run" >&2
  exit 1
fi

# /metrics over plain HTTP on the same port: a 200, and a harvest that
# accounts for exactly the two jobs this gate submitted.
host="${addr%:*}" port="${addr##*:}"
exec 3<>"/dev/tcp/$host/$port"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 >"$metrics_out"
exec 3<&- 3>&-

grep -q "^HTTP/1.0 200 OK" "$metrics_out" || {
  echo "FAIL: GET /metrics did not answer 200:" >&2; head -n 3 "$metrics_out" >&2; exit 1; }
for needle in "counter serve.jobs.submitted 2" \
              "counter serve.jobs.completed 2" \
              "counter serve.jobs.cancelled 0" \
              "gauge serve.jobs.active 0"; do
  grep -q "^$needle$" "$metrics_out" || {
    echo "FAIL: /metrics missing \"$needle\":" >&2; grep "serve\." "$metrics_out" >&2 || true; exit 1; }
done

echo "serve gate: OK (2 concurrent tenants, digests byte-identical to in-process, clean /metrics)"
