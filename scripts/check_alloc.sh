#!/usr/bin/env bash
# The allocation gate: runs the counting-allocator test binary
# (crates/core/tests/counting_alloc.rs), which wraps the global allocator
# and proves the warm record → flush-drain → chunked-digest-fold pipeline
# performs zero heap allocations per entry — the property the pooled
# SimWorkspace sweep path stands on.
#
#   scripts/check_alloc.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test --release -q -p quanto-core --test counting_alloc
