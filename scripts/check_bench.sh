#!/usr/bin/env bash
# Runs the whole bench suite plus the fleet smoke sweep and compares the
# measured medians against the checked-in BENCH_BASELINE.json (normalized by
# the calibration/spin bench, >25 % over normalized baseline fails).
#
#   scripts/check_bench.sh            # compare against the baseline
#   scripts/check_bench.sh --update   # re-record the baseline
#
# With BENCH_JSON_OUT=FILE in the environment, the measured medians are
# additionally written to FILE in the baseline's JSON format (the checked-in
# pin is untouched) — CI uploads that as the perf-trajectory artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

cargo bench | tee "$out"
cargo run --release -q -p quanto-bench --bin fleet_sweep -- --smoke | tee -a "$out"

# Workspace-pooling pin: the pooled-workspace run must beat the
# cold-workspace run outright.  Both medians come from the same bench
# binary in the same process, so no calibration normalization applies —
# a straight comparison is the whole point of the pair.
awk '
  $1 == "bench" && $2 ~ /^fleet\/workspace_(reuse|fresh)$/ && $3 == "median" {
    t = $4; unit = $5
    if (unit == "ns") ns = t
    else if (unit == "µs") ns = t * 1e3
    else if (unit == "ms") ns = t * 1e6
    else if (unit == "s") ns = t * 1e9
    else { printf "check_bench: unknown unit %s on %s\n", unit, $2; exit 1 }
    if ($2 == "fleet/workspace_reuse") reuse = ns; else fresh = ns
  }
  END {
    if (!reuse || !fresh) {
      print "check_bench: fleet/workspace_reuse or _fresh bench line missing"
      exit 1
    }
    printf "Workspace pooling: reuse %.0f ns vs fresh %.0f ns (%.1f%%)\n",
      reuse, fresh, 100 * reuse / fresh
    if (reuse >= fresh) {
      print "check_bench: POOLING FAILURE — workspace_reuse is not faster than workspace_fresh"
      exit 1
    }
  }
' "$out"

if [[ -n "${BENCH_JSON_OUT:-}" ]]; then
  cp BENCH_BASELINE.json "$BENCH_JSON_OUT"
  cargo run --release -q -p quanto-bench --bin bench_check -- \
    "$BENCH_JSON_OUT" "$out" --update > /dev/null
fi

cargo run --release -q -p quanto-bench --bin bench_check -- BENCH_BASELINE.json "$out" "$@"
