#!/usr/bin/env bash
# Runs the whole bench suite plus the fleet smoke sweep and compares the
# measured medians against the checked-in BENCH_BASELINE.json (normalized by
# the calibration/spin bench, >25 % over normalized baseline fails).
#
#   scripts/check_bench.sh            # compare against the baseline
#   scripts/check_bench.sh --update   # re-record the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

cargo bench | tee "$out"
cargo run --release -q -p quanto-bench --bin fleet_sweep -- --smoke | tee -a "$out"
cargo run --release -q -p quanto-bench --bin bench_check -- BENCH_BASELINE.json "$out" "$@"
