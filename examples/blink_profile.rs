//! The paper's headline single-node experiment: profile Blink for 48 seconds
//! and print where the time and energy went (Tables 3a–3d in miniature).
//!
//! Run with: `cargo run --example blink_profile --release`

use quanto::prelude::*;
use quanto::quanto_apps::blink_profile;

fn main() {
    let profile = blink_profile(SimDuration::from_secs(48));
    let bd = &profile.breakdown;
    let ctx = &profile.run.context;

    println!("Blink, 48 simulated seconds on a HydroWatch-like node");
    println!("log entries: {}", profile.log_entries);

    println!("\nTime per (device, activity) [s]:");
    for ((dev, label), time) in &bd.time_per_device_activity {
        if time.as_secs_f64() >= 0.001 {
            println!(
                "  {:<7} {:<16} {:>10.4}",
                ctx.device_name(*dev),
                ctx.label_name(*label),
                time.as_secs_f64()
            );
        }
    }

    println!("\nRegression (current per component):");
    for (i, col) in bd.regression.columns.iter().enumerate() {
        println!(
            "  {:<22} {:>8.3} mA",
            ctx.catalog.column_label(*col),
            bd.regression.power_uw[i] / ctx.supply.as_volts() / 1000.0
        );
    }
    println!(
        "  {:<22} {:>8.3} mA",
        "Const.",
        bd.regression.constant_uw / ctx.supply.as_volts() / 1000.0
    );

    println!("\nEnergy per activity [mJ]:");
    for (label, e) in &bd.energy_per_activity {
        if e.as_milli_joules() > 0.01 {
            println!(
                "  {:<18} {:>10.2}",
                ctx.label_name(*label),
                e.as_milli_joules()
            );
        }
    }
    println!(
        "  {:<18} {:>10.2}",
        "Const.",
        bd.constant_energy.as_milli_joules()
    );
    println!(
        "  {:<18} {:>10.2}",
        "Total",
        bd.total_reconstructed.as_milli_joules()
    );
    println!(
        "\nmetered total {:.2} mJ, reconstruction error {:.4} %",
        bd.total_measured.as_milli_joules(),
        profile.reconstruction_error * 100.0
    );
    println!(
        "logging overhead: {:.1} % of active CPU time, {:.3} % of total CPU time",
        profile.logging_active_fraction * 100.0,
        profile.logging_cpu_fraction * 100.0
    );
}
