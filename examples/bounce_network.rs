//! Cross-node activity tracking: run Bounce between nodes 1 and 4 and show
//! how much of each node's energy is charged to the *other* node's activity.
//!
//! Run with: `cargo run --example bounce_network --release`

use quanto::analysis::activity_segments;
use quanto::prelude::*;
use quanto::quanto_apps::run_bounce;

fn main() {
    let run = run_bounce(SimDuration::from_secs(5));

    for id in [NodeId(1), NodeId(4)] {
        let out = run.output(id);
        let ctx = run.context(id);
        println!("=== node {id} ===");
        println!(
            "packets sent {}, received {}",
            out.radio_stats.packets_sent, out.radio_stats.packets_received
        );

        // CPU time by activity origin.
        let segs = activity_segments(&out.log, ctx.cpu_dev, true, Some(out.final_stamp));
        let mut local = 0.0;
        let mut remote = 0.0;
        for s in &segs {
            if s.label.is_idle() {
                continue;
            }
            if s.label.origin == id {
                local += s.duration().as_millis_f64();
            } else {
                remote += s.duration().as_millis_f64();
            }
        }
        println!("CPU time under local activities:  {local:.2} ms");
        println!("CPU time under remote activities: {remote:.2} ms");

        // Per-activity energy, which charges node 1's LEDs and radio to
        // 4:BounceApp whenever it handles node 4's packet.
        if let Ok(bd) = breakdown(
            &out.log,
            &ctx.catalog,
            &ctx.breakdown_config(),
            Some(out.final_stamp),
        ) {
            println!("energy per activity:");
            for (label, e) in &bd.energy_per_activity {
                if e.as_micro_joules() > 10.0 {
                    println!(
                        "  {:<16} {:>9.3} mJ",
                        ctx.label_name(*label),
                        e.as_milli_joules()
                    );
                }
            }
        } else {
            println!("(not enough distinct power states for a full breakdown on this node)");
        }
        println!();
    }
}
