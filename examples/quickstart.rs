//! Quickstart: write a tiny instrumented application, run it, and ask Quanto
//! where the joules went.
//!
//! Run with: `cargo run --example quickstart`

use quanto::prelude::*;

/// A minimal sense-and-blink application with two programmer-defined
//  activities.
struct MyApp {
    sample: ActivityLabel,
    blink: ActivityLabel,
}

impl Application for MyApp {
    fn boot(&mut self, os: &mut OsHandle) {
        // Define the activities we want energy charged to (Figure 7 of the
        // paper: this is all an application programmer has to do).
        self.sample = os.define_activity("Sample");
        self.blink = os.define_activity("BlinkLed");

        // A periodic timer started under the Sample activity.
        os.set_cpu_activity(self.sample);
        os.start_timer(SimDuration::from_millis(200), true);
        os.set_cpu_activity(os.idle_activity());
    }

    fn timer_fired(&mut self, _timer: TimerId, os: &mut OsHandle) {
        // Sampling work, charged to Sample.
        os.read_sensor(SensorKind::Temperature);
        // LED work, charged to BlinkLed.
        os.set_cpu_activity(self.blink);
        os.led_toggle(0);
    }

    fn sensor_read_done(&mut self, _kind: SensorKind, value: u16, os: &mut OsHandle) {
        // The completion interrupt was automatically bound back to Sample.
        os.busy_wait(50 + (value % 10) as u64);
    }
}

fn main() {
    // Run the app for 10 simulated seconds on a HydroWatch-like node.
    let config = NodeConfig::new(NodeId(1));
    let mut sim = Simulator::new(
        config,
        Box::new(MyApp {
            sample: ActivityLabel::IDLE,
            blink: ActivityLabel::IDLE,
        }),
    );
    let out = sim.run_for(SimDuration::from_secs(10));
    let ctx = ExperimentContext::from_kernel(sim.node().kernel());

    println!("log entries: {}", out.log.len());
    println!(
        "true total energy: {:.3} mJ",
        out.ground_truth.total.as_milli_joules()
    );

    // Offline analysis: regression + per-activity breakdown.
    match breakdown(
        &out.log,
        &ctx.catalog,
        &ctx.breakdown_config(),
        Some(out.final_stamp),
    ) {
        Ok(bd) => {
            println!("\nEnergy per activity:");
            for (label, energy) in &bd.energy_per_activity {
                if energy.as_micro_joules() > 1.0 {
                    println!(
                        "  {:<20} {:>10.3} mJ",
                        ctx.label_name(*label),
                        energy.as_milli_joules()
                    );
                }
            }
            println!(
                "  {:<20} {:>10.3} mJ  (quiescent draw)",
                "Const.",
                bd.constant_energy.as_milli_joules()
            );
            println!("\nEnergy per hardware component:");
            for (sink, energy) in &bd.energy_per_sink {
                if energy.as_micro_joules() > 1.0 {
                    println!(
                        "  {:<20} {:>10.3} mJ",
                        ctx.catalog.sink(*sink).name,
                        energy.as_milli_joules()
                    );
                }
            }
            println!(
                "\nreconstruction error vs metered energy: {:.3} %",
                bd.reconstruction_error() * 100.0
            );
        }
        Err(e) => {
            println!("breakdown not possible yet: {e}");
        }
    }
}
