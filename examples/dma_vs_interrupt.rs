//! The Figure 16 design study: how much faster is a DMA-based radio FIFO
//! load than the interrupt-driven default, and what does that do to timing?
//!
//! Run with: `cargo run --example dma_vs_interrupt --release`

use quanto::quanto_apps::dma_comparison;

fn main() {
    let cmp = dma_comparison();
    println!("Packet transmission timing (Bounce, node 1's first packet):\n");
    for t in [&cmp.interrupt, &cmp.dma] {
        println!("{:?} mode:", t.mode);
        println!(
            "  FIFO load:           {:.3} ms",
            t.fifo_load.as_millis_f64()
        );
        println!("  load interrupts:     {}", t.load_interrupts);
        println!("  send() to TX done:   {:.3} ms", t.total.as_millis_f64());
        println!();
    }
    println!(
        "DMA loads the FIFO {:.1}x faster (the paper observes at least 2x).",
        cmp.speedup()
    );
}
