//! The 802.11-interference case study: a low-power-listening node on the
//! channel under a Wi-Fi access point versus one on a clear channel.
//!
//! Run with: `cargo run --example lpl_interference --release`

use quanto::prelude::*;
use quanto::quanto_apps::run_lpl_experiment;

fn main() {
    let duration = SimDuration::from_secs(14);
    println!(
        "LPL node, 500 ms check interval, 14 simulated seconds, 802.11b AP on Wi-Fi channel 6\n"
    );

    for channel in [17u8, 26u8] {
        let run = run_lpl_experiment(channel, duration, 0.18);
        println!("802.15.4 channel {channel}:");
        println!("  radio duty cycle:      {:.2} %", run.duty_cycle * 100.0);
        println!("  wake-ups:              {}", run.wakeups);
        println!(
            "  false positives:       {} ({:.1} % of wake-ups)",
            run.false_positives,
            run.false_positive_rate * 100.0
        );
        println!(
            "  average power:         {:.3} mW",
            run.average_power.as_milli_watts()
        );
        let total = run
            .cumulative_energy
            .last()
            .map(|(_, e)| e.as_milli_joules())
            .unwrap_or(0.0);
        println!("  total energy:          {total:.2} mJ");
        println!();
    }
    println!("Paper (Fig 13): channel 17 — 5.58 % duty cycle, 17.8 % false detections, 1.43 mW;");
    println!("                channel 26 — 2.22 % duty cycle, no false detections, 0.92 mW.");
}
