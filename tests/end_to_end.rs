//! End-to-end integration tests spanning the whole workspace: simulated
//! hardware → instrumented OS → Quanto log → offline analysis.

use quanto::analysis::{self, RegressionOptions};
use quanto::prelude::*;
use quanto::quanto_apps::{self, run_blink, run_lpl_experiment};
use quanto::quanto_core::EntryKind;

#[test]
fn blink_end_to_end_energy_accounting_matches_ground_truth() {
    let run = run_blink(SimDuration::from_secs(32));
    let ctx = &run.context;

    // 1. The metered (iCount) energy agrees with the simulator's ground
    //    truth to within one pulse of quantization error per interval.
    let metered = ctx.energy_per_count * run.output.final_stamp.icount as f64;
    let truth = run.output.ground_truth.total;
    let rel = (metered.as_micro_joules() - truth.as_micro_joules()).abs() / truth.as_micro_joules();
    assert!(rel < 0.01, "meter vs ground truth off by {rel}");

    // 2. The full pipeline (intervals -> regression -> breakdown) closes the
    //    loop: reconstructed energy matches metered energy.
    let bd = breakdown(
        &run.output.log,
        &ctx.catalog,
        &ctx.breakdown_config(),
        Some(run.output.final_stamp),
    )
    .expect("breakdown succeeds for Blink");
    assert!(bd.reconstruction_error() < 0.05);

    // 3. Per-sink estimates track the ground truth for the big consumers.
    for (i, led_sink) in [ctx.sinks.led0, ctx.sinks.led1, ctx.sinks.led2]
        .iter()
        .enumerate()
    {
        let est = bd.sink_energy(*led_sink).as_milli_joules();
        let truth = run.output.ground_truth.sink(*led_sink).as_milli_joules();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "LED{i}: estimated {est} mJ vs true {truth} mJ"
        );
    }

    // 4. Per-activity energy is dominated by the three LED activities.
    let [red, green, blue] = run.led_activities;
    let led_total = bd.activity_energy(red) + bd.activity_energy(green) + bd.activity_energy(blue);
    assert!(led_total.as_milli_joules() > 0.5 * bd.total_reconstructed.as_milli_joules());
}

#[test]
fn quanto_disabled_nodes_produce_no_log_but_same_physics() {
    use quanto::os_sim::{NodeConfig, Simulator};
    use quanto::quanto_apps::BlinkApp;

    let run_with = |enabled: bool| {
        let config = NodeConfig {
            quanto_enabled: enabled,
            dco_calibration: false,
            seed: 42,
            ..NodeConfig::new(NodeId(1))
        };
        let mut sim = Simulator::new(config, Box::new(BlinkApp::new()));
        sim.run_for(SimDuration::from_secs(8))
    };
    let on = run_with(true);
    let off = run_with(false);
    assert!(on.log.len() > 50);
    assert!(off.log.is_empty(), "uninstrumented node must not log");
    // Instrumentation perturbs timing slightly (logging costs CPU time and
    // shifts LED transitions by a few hundred microseconds), but the two
    // runs stay within a few percent of each other.
    let e_on = on.ground_truth.total.as_milli_joules();
    let e_off = off.ground_truth.total.as_milli_joules();
    assert!(
        (e_on - e_off).abs() / e_off < 0.05,
        "instrumented {e_on} mJ vs uninstrumented {e_off} mJ"
    );
}

#[test]
fn log_entries_round_trip_through_the_wire_format() {
    let run = run_blink(SimDuration::from_secs(8));
    for entry in &run.output.log {
        let decoded = LogEntry::decode(&entry.encode()).expect("valid entry");
        assert_eq!(decoded, *entry);
    }
    // Both power-state and activity entries appear.
    assert!(run
        .output
        .log
        .iter()
        .any(|e| e.kind == EntryKind::PowerState));
    assert!(run
        .output
        .log
        .iter()
        .any(|e| e.kind == EntryKind::ActivityChange));
}

#[test]
fn unweighted_regression_is_no_better_than_weighted_on_quantized_data() {
    // Ablation: the paper weights observations by sqrt(E*t) because short,
    // low-energy intervals are dominated by quantization error.
    let run = run_blink(SimDuration::from_secs(24));
    let ctx = &run.context;
    let intervals =
        analysis::power_intervals(&run.output.log, &ctx.catalog, Some(run.output.final_stamp));
    let weighted = analysis::regress_intervals(
        &intervals,
        &ctx.catalog,
        ctx.energy_per_count,
        RegressionOptions {
            weighted: true,
            include_constant: true,
        },
    )
    .unwrap();
    let unweighted = analysis::regress_intervals(
        &intervals,
        &ctx.catalog,
        ctx.energy_per_count,
        RegressionOptions {
            weighted: false,
            include_constant: true,
        },
    )
    .unwrap();
    // Compare against the true (nominal) LED0 current of 4.3 mA.
    let err = |r: &analysis::RegressionResult| {
        let i = r
            .state_current(
                &ctx.catalog,
                ctx.sinks.led0,
                quanto::hw_model::catalog::led_state::ON,
                ctx.supply,
            )
            .unwrap()
            .as_milli_amps();
        (i - 4.3).abs()
    };
    assert!(
        err(&weighted) <= err(&unweighted) + 0.05,
        "weighted {} vs unweighted {}",
        err(&weighted),
        err(&unweighted)
    );
}

#[test]
fn lpl_interference_crossover_holds_across_interference_levels() {
    // The gap between the interfered and clean channels grows with the
    // interferer's duty cycle.
    let light = run_lpl_experiment(17, SimDuration::from_secs(10), 0.05);
    let heavy = run_lpl_experiment(17, SimDuration::from_secs(10), 0.5);
    let clean = run_lpl_experiment(26, SimDuration::from_secs(10), 0.5);
    assert!(heavy.duty_cycle > light.duty_cycle);
    assert!(heavy.false_positives >= light.false_positives);
    assert_eq!(clean.false_positives, 0);
    assert!(heavy.average_power.as_milli_watts() > clean.average_power.as_milli_watts());
}

#[test]
fn counters_mode_agrees_with_log_mode_on_cpu_time() {
    use quanto::os_sim::{NodeConfig, Simulator};
    use quanto::quanto_apps::BlinkApp;
    use quanto::quanto_core::AccountingMode;

    let config = NodeConfig {
        accounting: AccountingMode::Both,
        dco_calibration: false,
        ..NodeConfig::new(NodeId(1))
    };
    let mut sim = Simulator::new(config, Box::new(BlinkApp::new()));
    let out = sim.run_for(SimDuration::from_secs(8));
    let ctx = quanto_apps::ExperimentContext::from_kernel(sim.node().kernel());

    // Offline (log-based) CPU time per activity.
    let segs = analysis::activity_segments(&out.log, ctx.cpu_dev, false, Some(out.final_stamp));
    let mut offline: std::collections::HashMap<ActivityLabel, u64> =
        std::collections::HashMap::new();
    for s in &segs {
        *offline.entry(s.label).or_insert(0) += s.duration().as_micros();
    }
    // Online counters from the runtime.
    let counters = sim.node().kernel().quanto().counters();
    let mut checked = 0;
    for (dev, label, time) in counters.times() {
        if dev != ctx.cpu_dev {
            continue;
        }
        let offline_us = offline.get(&label).copied().unwrap_or(0);
        // The online counters stop at the last change rather than the end of
        // the window, so allow slack for the final segment.
        if offline_us > 10_000 {
            let online_us = time.as_micros();
            assert!(
                online_us <= offline_us,
                "online {online_us} > offline {offline_us} for {label}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "at least one activity compared");
}
