//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use quanto::analysis::{self, PowerInterval, RegressionOptions};
use quanto::hw_model::catalog::{blink_catalog, led_state};
use quanto::hw_model::{Energy, PowerModel, SimDuration, SimTime, SinkId, StateVector, Voltage};
use quanto::quanto_core::{
    ActivityId, ActivityLabel, DeviceId, EntryKind, LogEntry, NodeId, OverflowPolicy, RamLogger,
};
use std::sync::Arc;

proptest! {
    /// Activity labels survive the wire encoding for every representable
    /// (origin, id) pair — including origins beyond the one-byte v1 range.
    #[test]
    fn activity_labels_round_trip(origin in 0u32..=NodeId::MAX_LABEL_ORIGIN, id in 0u8..=255) {
        let label = ActivityLabel::new(NodeId(origin), ActivityId(id));
        prop_assert_eq!(ActivityLabel::decode(label.encode()), label);
    }

    /// Log entries survive the 12-byte v1 wire encoding for arbitrary
    /// v1-representable fields, and the 18-byte v2 encoding for arbitrary
    /// wide fields.
    #[test]
    fn log_entries_round_trip(
        kind in 0u8..5,
        res in 0u8..=255,
        time in any::<u32>(),
        wide_time in any::<u64>(),
        ic in any::<u32>(),
        value in any::<u16>(),
        wide_value in any::<u32>(),
    ) {
        let entry = LogEntry {
            kind: EntryKind::from_u8(kind).unwrap(),
            res_id: res,
            time_us: time as u64,
            icount: ic,
            value: value as u32,
        };
        prop_assert!(entry.fits_v1());
        prop_assert_eq!(LogEntry::decode(&entry.encode()), Some(entry));
        let wide = LogEntry { time_us: wide_time, value: wide_value, ..entry };
        prop_assert_eq!(LogEntry::decode_v2(&wide.encode_v2()), Some(wide));
    }

    /// The RAM logger never exceeds its capacity and never loses entries
    /// under the Flush policy.
    #[test]
    fn logger_respects_capacity(capacity in 1usize..64, n in 0usize..256) {
        for policy in [OverflowPolicy::Stop, OverflowPolicy::Wrap, OverflowPolicy::Flush] {
            let mut logger = RamLogger::new(capacity, policy);
            for i in 0..n {
                logger.record(LogEntry::power_state(
                    SimTime::from_micros(i as u64),
                    i as u32,
                    SinkId(0),
                    (i % 3) as u16,
                ));
            }
            prop_assert!(logger.buffered().len() <= capacity);
            prop_assert_eq!(logger.offered(), n as u64);
            match policy {
                OverflowPolicy::Flush => prop_assert_eq!(logger.len(), n),
                OverflowPolicy::Stop | OverflowPolicy::Wrap => {
                    prop_assert_eq!(logger.len(), n.min(capacity));
                }
            }
        }
    }

    /// Ground-truth energy accounting is additive: the per-sink energies sum
    /// to the total, for arbitrary sequences of LED switches.
    #[test]
    fn energy_accumulator_is_additive(switches in prop::collection::vec((0usize..3, any::<bool>(), 1u64..500), 1..40)) {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = Arc::new(PowerModel::ideal(cat));
        let mut acc = quanto::hw_model::EnergyAccumulator::new(model);
        let mut t = 0u64;
        for (led, on, dt) in switches {
            t += dt;
            let state = if on { led_state::ON } else { led_state::OFF };
            acc.set_state(SimTime::from_millis(t), leds[led], state);
        }
        acc.advance(SimTime::from_millis(t + 100));
        let bd = acc.breakdown();
        let sum: f64 = bd.per_sink.values().map(|e| e.as_micro_joules()).sum();
        prop_assert!((sum - bd.total.as_micro_joules()).abs() < 1e-6);
    }

    /// The regression recovers per-LED power draws (within quantization
    /// error) for randomized schedules that exercise all LED combinations.
    #[test]
    fn regression_recovers_powers_for_random_schedules(seed_durs in prop::collection::vec(200u64..2_000, 8)) {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = PowerModel::ideal(cat.clone());
        let mut intervals = Vec::new();
        let mut t = SimTime::ZERO;
        let mut cumulative = 0.0f64;
        let mut prev = 0u64;
        for (mask, ms) in seed_durs.iter().enumerate() {
            let mut sv = StateVector::baseline(&cat);
            for (i, led) in leds.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sv.set_state(*led, led_state::ON);
                }
            }
            let dur = SimDuration::from_millis(*ms);
            cumulative += model.energy_over(&sv, dur).as_micro_joules();
            let counts = cumulative.floor() as u64;
            intervals.push(PowerInterval {
                start: t,
                end: t + dur,
                counts: (counts - prev) as u32,
                states: (0..cat.sink_count()).map(|i| sv.state(SinkId(i as u16))).collect(),
            });
            prev = counts;
            t += dur;
        }
        let reg = analysis::regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions::default(),
        );
        prop_assume!(reg.is_ok());
        let reg = reg.unwrap();
        let supply = Voltage::from_volts(3.0);
        let i0 = reg
            .state_current(&cat, leds[0], led_state::ON, supply)
            .unwrap()
            .as_milli_amps();
        // Blink-catalog LED0 nominal is 2.5 mA; quantization on short
        // intervals can cost a few percent.
        prop_assert!((i0 - 2.5).abs() < 0.25, "estimated {} mA", i0);
    }

    /// The streaming interval builder fed arbitrary chunk sizes (including
    /// 1-entry chunks, with wall-clock steps large enough that chunk
    /// boundaries straddle 32-bit time wraps many times per case) produces
    /// exactly the batch `power_intervals` output — and the incremental
    /// observation pool regresses to exactly the batch `regress_intervals`
    /// result, bit for bit.
    #[test]
    fn streamed_intervals_match_batch_for_random_chunkings(
        steps in prop::collection::vec(
            (1u64..2_000_000_000, 0usize..4, 1u32..50_000, any::<bool>()),
            1..60,
        ),
        chunk in 1usize..17,
    ) {
        let (cat, _cpu, leds) = blink_catalog();
        // Build a log whose 32-bit clock wraps roughly every four entries.
        let mut t: u64 = 0;
        let mut ic: u32 = 0;
        let mut entries = Vec::new();
        for (dt, which, dic, on) in &steps {
            t += dt;
            ic = ic.wrapping_add(*dic);
            if *which < 3 {
                entries.push(LogEntry::power_state(
                    SimTime::from_micros(t),
                    ic,
                    leds[*which],
                    if *on { led_state::ON.as_u8() as u16 } else { led_state::OFF.as_u8() as u16 },
                ));
            } else {
                // Activity entries matter only for wrap detection here; the
                // interval builder must still consume their timestamps.
                entries.push(LogEntry::activity(
                    EntryKind::ActivityChange,
                    SimTime::from_micros(t),
                    ic,
                    DeviceId(0),
                    ActivityLabel::new(NodeId(1), ActivityId(1)),
                ));
            }
        }
        let stamp = Some(quanto::quanto_core::Stamp::new(
            SimTime::from_micros(t + 500),
            ic.wrapping_add(3),
        ));
        let batch = analysis::power_intervals(&entries, &cat, stamp);

        let mut builder = analysis::IntervalBuilder::new(&cat);
        let mut streamed = Vec::new();
        let mut pool = analysis::ObservationPool::new();
        for c in entries.chunks(chunk) {
            builder.push_chunk(c);
            for iv in builder.drain_completed() {
                pool.add(&iv);
                streamed.push(iv);
            }
        }
        for iv in builder.finish(stamp) {
            pool.add(&iv);
            streamed.push(iv);
        }
        prop_assert!(streamed == batch, "streamed != batch at chunk size {}", chunk);

        let epc = Energy::from_micro_joules(1.0);
        let batch_reg = analysis::regress_intervals(&batch, &cat, epc, RegressionOptions::default());
        let stream_reg = analysis::regress(&pool.observations(epc), &cat, RegressionOptions::default());
        match (batch_reg, stream_reg) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.columns, &b.columns);
                prop_assert_eq!(a.relative_error.to_bits(), b.relative_error.to_bits());
                for (pa, pb) in a.power_uw.iter().zip(b.power_uw.iter()) {
                    prop_assert_eq!(pa.to_bits(), pb.to_bits());
                }
                prop_assert_eq!(a.constant_uw.to_bits(), b.constant_uw.to_bits());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "regressions diverged: {:?} vs {:?}", a, b),
        }
    }

    /// The streaming segment builder matches batch `activity_segments` for
    /// random schedules with binds, at random chunk sizes, in both binding
    /// modes.
    #[test]
    fn streamed_segments_match_batch_for_random_chunkings(
        changes in prop::collection::vec((1u64..1_500_000_000, 0u8..4, any::<bool>()), 1..50),
        chunk in 1usize..9,
        resolve in any::<bool>(),
    ) {
        let dev = DeviceId(0);
        let mut t = 0u64;
        let mut entries = Vec::new();
        for (dt, act, bind) in &changes {
            t += dt;
            entries.push(LogEntry::activity(
                if *bind { EntryKind::ActivityBind } else { EntryKind::ActivityChange },
                SimTime::from_micros(t),
                0,
                dev,
                ActivityLabel::new(NodeId(1), ActivityId(*act)),
            ));
        }
        let stamp = Some(quanto::quanto_core::Stamp::new(SimTime::from_micros(t + 100), 0));
        let batch = analysis::activity_segments(&entries, dev, resolve, stamp);
        let mut builder = analysis::SegmentBuilder::new(dev, resolve);
        let mut streamed = Vec::new();
        for c in entries.chunks(chunk) {
            builder.push_chunk(c);
            streamed.extend(builder.drain_completed());
        }
        streamed.extend(builder.finish(stamp));
        prop_assert!(streamed == batch, "streamed != batch (resolve {}, chunk {})", resolve, chunk);
    }

    /// Activity-segment extraction conserves time: segments of a device
    /// partition [0, end) with no overlaps and no gaps.
    #[test]
    fn activity_segments_partition_time(changes in prop::collection::vec((1u64..10_000, 0u8..5), 1..50)) {
        let dev = DeviceId(0);
        let mut entries = Vec::new();
        let mut t = 0u64;
        for (dt, act) in &changes {
            t += dt;
            entries.push(LogEntry::activity(
                EntryKind::ActivityChange,
                SimTime::from_micros(t),
                0,
                dev,
                ActivityLabel::new(NodeId(1), ActivityId(*act)),
            ));
        }
        let end = t + 1_000;
        let final_stamp = quanto::quanto_core::Stamp::new(SimTime::from_micros(end), 0);
        let segs = analysis::activity_segments(&entries, dev, false, Some(final_stamp));
        // Total coverage equals the window.
        let covered: u64 = segs.iter().map(|s| s.duration().as_micros()).sum();
        prop_assert_eq!(covered, end);
        // Segments are contiguous and ordered.
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }
}
